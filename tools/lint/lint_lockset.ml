(* R7: interprocedural lockset analysis over the typed trees.

   For every top-level mutable cell (ref, Hashtbl, array, record with
   mutable fields, DLS key — the same creator vocabulary as R1) in a
   directory R1 covers, compute the set of mutexes held on each access
   path and flag cells whose accesses disagree:

     - an access with an *empty* effective lockset while the cell is
       shared is a potential data race (R7 at the access);
     - accesses under *disjoint* locksets mean no mutex protects the
       cell consistently (R7 at the first access that breaks the
       common intersection, naming the offending pair).

   Lockset tracking understands the repo's two locking idioms —
   [Mutex.protect m (fun () -> …)] and
   [Mutex.lock m; Fun.protect ~finally:(… unlock …) …] (the sequence
   continuation after [Mutex.lock m] is credited with [m]) — and three
   structural facts:

     - locks are named canonically: resolved global path, through
       top-level aliases ([let l = lock] counts as [lock]), or a
       record field name for locks carried in records;
     - code inside a callback argument of a receiver (Pool.*,
       Domain.spawn) is *detached*: it runs on another domain, so it
       inherits neither the caller's locks nor its entry lockset;
     - a function called only with lock [m] held may access cells
       relying on [m]: the *entry lockset* of a definition is the
       intersection over its call sites of (locks held at the site ∪
       the caller's own entry lockset), computed as a descending
       fixpoint from ⊤.  Definitions never called (exported API,
       module initialization) have an empty entry lockset.

   Known over-approximations, accepted and documented in docs/LINT.md:
   a lambda built under a lock but run later is credited with the
   lock; the lock added by [Mutex.lock m; …] extends past the
   [Fun.protect] that releases it (the repo idiom keeps the critical
   section inside the protect thunk, so nothing relies on the gap).

   DLS-key cells are tracked but never flagged: per-domain state
   cannot race (R1 already demands a reasoned allow for staleness).
   Suppress a cell with [@@lint.allow "R7: reason"] on its definition
   or a file-level floating attribute. *)

open Typedtree
module S = Set.Make (String)

type cell = {
  cid : string;
  kind : Lint_cmt.cell_kind;
  loc : Location.t;
  src : string;
  suppressed : bool;
}

type access = {
  acell : string;
  aloc : Location.t;
  asrc : string;
  actx : string;  (* enclosing definition id, or "<detached>" *)
  alocks : S.t;
}

type site = { callee : string; caller : string; slocks : S.t }

let kind_name = function
  | Lint_cmt.Ref -> "ref"
  | Table -> "table"
  | Array -> "array"
  | Record -> "record"
  | Dls -> "dls"
  | Other -> "other"

(* ---- suppressions ---- *)

let rule_of_allow_payload payload =
  match Lint_engine.string_payload payload with
  | Some s ->
      let rule =
        match String.index_opt s ':' with
        | Some i -> String.sub s 0 i
        | None -> s
      in
      Some (String.trim rule)
  | None -> None

let rules_of_attrs attrs =
  List.filter_map
    (fun (a : Parsetree.attribute) ->
      if a.attr_name.txt = Lint_engine.allow_attr then
        rule_of_allow_payload a.attr_payload
      else None)
    attrs

let file_suppressions (m : Lint_cmt.modl) =
  List.concat_map
    (fun item ->
      match item.str_desc with
      | Tstr_attribute a -> rules_of_attrs [ a ]
      | _ -> [])
    m.str.str_items

(* ---- the lockset walk ---- *)

let mutex_lock_arg (e : expression) =
  match e.exp_desc with
  | Texp_apply (f, args)
    when match f.exp_desc with
         | Texp_ident (p, _, _) -> Lint_cmt.norm_name p = "Mutex.lock"
         | _ -> false ->
      List.find_map (fun (_, a) -> a) args
  | _ -> None

let walk_def ~tbl ~cells ~record_access ~record_site
    (d : Lint_callgraph.def) =
  let resolve = Lint_callgraph.resolve_ident tbl d.stack in
  let canon id = Lint_callgraph.canonical tbl id in
  let locks = ref S.empty in
  let context = ref d.id in
  let lock_name (m : expression) =
    match m.exp_desc with
    | Texp_ident (p, _, _) -> (
        match resolve p with
        | `Global id -> Some (canon id)
        | `Local ->
            (* a mutex received as a parameter: name it per definition
               so two different callers' locks never unify *)
            Some (Printf.sprintf "<local:%s:%s>" d.id (Path.name p)))
    | Texp_field (_, _, lbl) -> Some ("<field:" ^ lbl.Types.lbl_name ^ ">")
    | _ -> None
  in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun it e ->
          let visit c = it.Tast_iterator.expr it c in
          let default () = Tast_iterator.default_iterator.expr it e in
          match e.exp_desc with
          | Texp_ident (p, _, _) -> (
              match resolve p with
              | `Global id ->
                  let cid = canon id in
                  if Hashtbl.mem cells cid then
                    record_access
                      {
                        acell = cid;
                        aloc = e.exp_loc;
                        asrc = d.src;
                        actx = !context;
                        alocks = !locks;
                      }
              | `Local -> ())
          | Texp_sequence (e1, e2) -> (
              match Option.bind (mutex_lock_arg e1) lock_name with
              | Some ln ->
                  visit e1;
                  let saved = !locks in
                  locks := S.add ln !locks;
                  visit e2;
                  locks := saved
              | None -> default ())
          | Texp_apply (({ exp_desc = Texp_ident (p, _, _); _ } as f), args)
            -> (
              match resolve p with
              | `Global id -> (
                  let cname = canon id in
                  record_site
                    { callee = cname; caller = !context; slocks = !locks };
                  if Lint_cmt.dot_suffix cname "Mutex.protect" then
                    match args with
                    | (_, Some m) :: rest when lock_name m <> None ->
                        let ln = Option.get (lock_name m) in
                        visit f;
                        visit m;
                        let saved = !locks in
                        locks := S.add ln !locks;
                        List.iter (fun (_, a) -> Option.iter visit a) rest;
                        locks := saved
                    | _ -> default ()
                  else if Lint_cmt.is_receiver cname then (
                    visit f;
                    let sl = !locks and sc = !context in
                    locks := S.empty;
                    context := "<detached>";
                    List.iter (fun (_, a) -> Option.iter visit a) args;
                    locks := sl;
                    context := sc)
                  else default ())
              | `Local -> default ())
          | _ -> default ());
    }
  in
  it.expr it d.body

(* ---- entry locksets ---- *)

(* entry(f) = ⋂ over call sites of f of (site locks ∪ entry(caller)),
   as a descending fixpoint from ⊤ (represented None).  Contexts with
   no call sites — exported functions, module initialization,
   "<detached>" — have entry ∅. *)
let entry_locksets ~tbl sites =
  let by_callee = Hashtbl.create 64 in
  let entry = Hashtbl.create 64 in
  List.iter
    (fun s ->
      if Hashtbl.mem tbl s.callee then (
        Hashtbl.replace by_callee s.callee
          (s :: Option.value ~default:[] (Hashtbl.find_opt by_callee s.callee));
        Hashtbl.replace entry s.callee None))
    sites;
  (* Iterate the fixpoint over a sorted callee list so convergence —
     and the intermediate states a debugger would see — are
     independent of hash order. *)
  let callees =
    Hashtbl.fold (fun callee _ acc -> callee :: acc) by_callee []
    |> List.sort String.compare
  in
  let entry_of ctx =
    match Hashtbl.find_opt entry ctx with
    | Some v -> v
    | None -> Some S.empty
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun callee ->
        let sites = Hashtbl.find by_callee callee in
        let next =
          List.fold_left
            (fun acc s ->
              match entry_of s.caller with
              | None -> acc (* ⊤ caller contributes ⊤: identity for ⋂ *)
              | Some caller_entry -> (
                  let contrib = S.union s.slocks caller_entry in
                  match acc with
                  | None -> Some contrib
                  | Some a -> Some (S.inter a contrib)))
            None sites
        in
        if next <> entry_of callee then (
          Hashtbl.replace entry callee next;
          changed := true))
      callees
  done;
  fun ctx -> match entry_of ctx with None -> S.empty | Some s -> s

(* ---- verdicts and diagnostics ---- *)

let fmt_locks s =
  if S.is_empty s then "{}" else "{" ^ String.concat ", " (S.elements s) ^ "}"

let line_of (loc : Location.t) = loc.loc_start.pos_lnum

let analyze ~(mods : Lint_cmt.modl list) ~(defs : Lint_callgraph.def list)
    ~tbl =
  let file_sup = Hashtbl.create 16 in
  List.iter (fun m -> Hashtbl.replace file_sup m.Lint_cmt.src (file_suppressions m)) mods;
  let suppressed_here src rules =
    List.mem "R7" rules || List.mem "all" rules
    ||
    match Hashtbl.find_opt file_sup src with
    | Some frs -> List.mem "R7" frs || List.mem "all" frs
    | None -> false
  in
  let cells = Hashtbl.create 64 in
  List.iter
    (fun (d : Lint_callgraph.def) ->
      if (Lint_config.classify d.src).Lint_config.r1 then
        match Lint_cmt.creator_kind d.body with
        | Some (kind, _) ->
            Hashtbl.replace cells d.id
              {
                cid = d.id;
                kind;
                loc = d.loc;
                src = d.src;
                suppressed = suppressed_here d.src (rules_of_attrs d.attrs);
              }
        | None -> ())
    defs;
  let accesses = ref [] and sites = ref [] in
  List.iter
    (fun d ->
      walk_def ~tbl ~cells
        ~record_access:(fun a -> accesses := a :: !accesses)
        ~record_site:(fun s -> sites := s :: !sites)
        d)
    defs;
  let entry = entry_locksets ~tbl !sites in
  let effective a = S.union a.alocks (entry a.actx) in
  let by_cell = Hashtbl.create 64 in
  List.iter
    (fun a ->
      Hashtbl.replace by_cell a.acell
        (a :: Option.value ~default:[] (Hashtbl.find_opt by_cell a.acell)))
    !accesses;
  let diags = ref [] and verdicts = ref [] in
  let report ~loc ~src msg =
    diags := Lint_diag.of_location ~rule:"R7" ~file:src loc msg :: !diags
  in
  let cells_sorted =
    Hashtbl.fold (fun _ c acc -> c :: acc) cells []
    |> List.sort (fun a b ->
           let c = String.compare a.src b.src in
           if c <> 0 then c else Int.compare (line_of a.loc) (line_of b.loc))
  in
  List.iter
    (fun c ->
      let accs =
        Option.value ~default:[] (Hashtbl.find_opt by_cell c.cid)
        |> List.sort (fun a b ->
               let cmp = String.compare a.asrc b.asrc in
               if cmp <> 0 then cmp
               else
                 let cmp = Int.compare (line_of a.aloc) (line_of b.aloc) in
                 if cmp <> 0 then cmp
                 else
                   Int.compare a.aloc.loc_start.pos_cnum
                     b.aloc.loc_start.pos_cnum)
      in
      let verdict, locks =
        if c.kind = Lint_cmt.Dls then ("per-domain", S.empty)
        else if c.suppressed then ("suppressed", S.empty)
        else if accs = [] then ("unused", S.empty)
        else
          let effs = List.map effective accs in
          let common =
            List.fold_left S.inter (List.hd effs) (List.tl effs)
          in
          if not (S.is_empty common) then ("verified", common)
          else
            let empties =
              List.filter (fun a -> S.is_empty (effective a)) accs
            in
            if empties <> [] then (
              let others =
                List.fold_left
                  (fun acc a -> S.union acc (effective a))
                  S.empty accs
              in
              List.iter
                (fun a ->
                  report ~loc:a.aloc ~src:a.asrc
                    (Printf.sprintf
                       "shared mutable cell '%s' (defined at %s:%d) is \
                        accessed with no lock held; %s; guard the access, \
                        make the cell Atomic, or suppress at the definition \
                        with [@lint.allow \"R7: reason\"]"
                       c.cid c.src (line_of c.loc)
                       (if S.is_empty others then
                          "no access of it ever holds a lock"
                        else
                          Printf.sprintf "other accesses hold %s"
                            (fmt_locks others))))
                empties;
              ("empty-lockset", S.empty))
            else (
              (* every access holds some lock, but no mutex is common:
                 report at the first access that breaks the running
                 intersection, naming a disjoint earlier access *)
              let arr = Array.of_list accs in
              let effa = Array.of_list effs in
              let j = ref 1 and acc = ref effa.(0) and broke = ref false in
              while (not !broke) && !j < Array.length arr do
                let next = S.inter !acc effa.(!j) in
                if S.is_empty next then broke := true
                else (
                  acc := next;
                  incr j)
              done;
              let j = min !j (Array.length arr - 1) in
              let i =
                let rec find i =
                  if i >= j then 0
                  else if S.is_empty (S.inter effa.(i) effa.(j)) then i
                  else find (i + 1)
                in
                find 0
              in
              let a = arr.(j) in
              report ~loc:a.aloc ~src:a.asrc
                (Printf.sprintf
                   "inconsistent locking for shared mutable cell '%s' \
                    (defined at %s:%d): this access holds %s but the access \
                    at %s:%d holds %s; no mutex is common to every access — \
                    pick one lock, or suppress at the definition with \
                    [@lint.allow \"R7: reason\"]"
                   c.cid c.src (line_of c.loc)
                   (fmt_locks effa.(j))
                   arr.(i).asrc (line_of arr.(i).aloc)
                   (fmt_locks effa.(i)));
              ("inconsistent", S.empty))
      in
      verdicts :=
        Jsonl.Obj
          [
            ("cell", Jsonl.String c.cid);
            ("kind", Jsonl.String (kind_name c.kind));
            ("src", Jsonl.String c.src);
            ("line", Jsonl.Int (line_of c.loc));
            ("accesses", Jsonl.Int (List.length accs));
            ("verdict", Jsonl.String verdict);
            ( "locks",
              Jsonl.List (List.map (fun l -> Jsonl.String l) (S.elements locks))
            );
          ]
        :: !verdicts)
    cells_sorted;
  (List.sort_uniq Lint_diag.compare !diags, Jsonl.List (List.rev !verdicts))
