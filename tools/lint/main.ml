(* speedup-lint driver.

   Usage: main.exe [options] <file|dir>...
     --baseline FILE   known findings that do not fail the run
     --prefix P        logical path prefix for bare file arguments
                       (per-directory dune rules pass e.g. lib/runtime/)
     --format human|json
     --emit-baseline   print a baseline covering the current findings
     --rules R1,R3     restrict to a subset of rules

   Exit codes: 0 clean, 1 findings, 2 usage or I/O error. *)

let usage = "speedup-lint [options] <file|dir>..."

let rec collect_files acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if name = "_build" || name = ".git" then acc
           else collect_files acc (Filename.concat path name))
         acc
  else if
    Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
  then path :: acc
  else acc

let () =
  let baseline_path = ref None in
  let prefix = ref "" in
  let format = ref "human" in
  let emit_baseline = ref false in
  let rules = ref None in
  let paths = ref [] in
  let spec =
    [
      ( "--baseline",
        Arg.String (fun s -> baseline_path := Some s),
        "FILE baseline of known findings" );
      ( "--prefix",
        Arg.Set_string prefix,
        "P logical path prefix for bare file arguments" );
      ("--format", Arg.Set_string format, "human|json output format");
      ( "--emit-baseline",
        Arg.Set emit_baseline,
        " print a baseline for the current findings" );
      ( "--rules",
        Arg.String (fun s -> rules := Some (String.split_on_char ',' s)),
        "R1,R2,... restrict to these rules" );
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  if !paths = [] then (
    prerr_endline usage;
    exit 2);
  if !format <> "human" && !format <> "json" then (
    prerr_endline "speedup-lint: --format must be human or json";
    exit 2);
  (* Files named on the command line get --prefix for their logical
     path; files found under a directory argument already carry it. *)
  let files =
    List.concat_map
      (fun p ->
        if not (Sys.file_exists p) then (
          Printf.eprintf "speedup-lint: no such file: %s\n" p;
          exit 2);
        if Sys.is_directory p then
          List.map (fun f -> ("", f)) (List.rev (collect_files [] p))
        else [ (!prefix, p) ])
      (List.rev !paths)
  in
  let diags =
    List.concat_map (fun (prefix, f) -> Lint_engine.lint_file ~prefix f) files
    |> List.sort_uniq Lint_diag.compare
  in
  let diags =
    match !rules with
    | None -> diags
    | Some rs -> List.filter (fun (d : Lint_diag.t) -> List.mem d.rule rs) diags
  in
  if !emit_baseline then (
    print_string (Lint_baseline.emit diags);
    exit 0);
  let entries =
    match !baseline_path with
    | None -> []
    | Some p -> (
        match Lint_baseline.load p with
        | Ok entries -> entries
        | Error msg ->
            Printf.eprintf "speedup-lint: %s\n" msg;
            exit 2)
  in
  let live, baselined, stale = Lint_baseline.apply entries diags in
  (match !format with
  | "json" -> print_endline (Lint_diag.list_to_json live)
  | _ ->
      List.iter (fun d -> print_endline (Lint_diag.to_human d)) live;
      if baselined <> [] then
        Printf.printf "speedup-lint: %d finding(s) covered by the baseline\n"
          (List.length baselined);
      List.iter
        (fun (e : Lint_baseline.entry) ->
          Printf.printf
            "speedup-lint: stale baseline entry %s %s:%d (no longer fires — \
             remove it)\n"
            e.rule e.file e.line)
        stale;
      if live = [] then
        Printf.printf "speedup-lint: %d file(s) clean\n" (List.length files));
  exit (if live = [] then 0 else 1)
