(* speedup-lint driver.

   Usage: main.exe [options] <file|dir>...
     --baseline FILE   known findings that do not fail the run
     --prefix P        logical path prefix for bare file arguments
                       (per-directory dune rules pass e.g. lib/runtime/)
     --format human|json
     --emit-baseline   print a baseline; with --baseline, prune the
                       given baseline to the entries that still fire
     --rules R1,R3     restrict to a subset of rules
     --cmt             typed whole-program mode: arguments are
                       directories scanned recursively for .cmt files
                       (run it from _build/default, as the @lint rule
                       does); runs the typed R1/R3/R4/R5/R6 checks,
                       the R7 lockset analysis, and — with
                       --check-config — the reachability/config diff
     --as P            (with --cmt) logical directory for the scanned
                       modules, e.g. --as lib/closure/ for fixtures
     --check-config    (with --cmt) fail on drift between the inferred
                       pool-reachable set and parallel_reachable
     --reachability    (with --cmt) print the inferred pool-reachable
                       set as JSON and exit
     --locks           (with --cmt) print per-cell lockset verdicts as
                       JSON lines and exit

   Exit codes: 0 clean, 1 findings, 2 usage or I/O error. *)

let usage = "speedup-lint [options] <file|dir>..."

let rec collect_files acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if name = "_build" || name = ".git" then acc
           else collect_files acc (Filename.concat path name))
         acc
  else if
    Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
  then path :: acc
  else acc

let () =
  let baseline_path = ref None in
  let prefix = ref "" in
  let format = ref "human" in
  let emit_baseline = ref false in
  let rules = ref None in
  let cmt = ref false in
  let as_dir = ref None in
  let check_config = ref false in
  let reachability = ref false in
  let locks = ref false in
  let paths = ref [] in
  let spec =
    [
      ( "--baseline",
        Arg.String (fun s -> baseline_path := Some s),
        "FILE baseline of known findings" );
      ( "--prefix",
        Arg.Set_string prefix,
        "P logical path prefix for bare file arguments" );
      ("--format", Arg.Set_string format, "human|json output format");
      ( "--emit-baseline",
        Arg.Set emit_baseline,
        " print a baseline for the current findings (prunes with \
         --baseline)" );
      ( "--rules",
        Arg.String (fun s -> rules := Some (String.split_on_char ',' s)),
        "R1,R2,... restrict to these rules" );
      ("--cmt", Arg.Set cmt, " typed whole-program mode over .cmt trees");
      ( "--as",
        Arg.String (fun s -> as_dir := Some s),
        "P logical directory for --cmt modules (e.g. lib/closure/)" );
      ( "--check-config",
        Arg.Set check_config,
        " fail on inferred-reachability vs parallel_reachable drift" );
      ( "--reachability",
        Arg.Set reachability,
        " print the inferred pool-reachable set as JSON and exit" );
      ( "--locks",
        Arg.Set locks,
        " print per-cell lockset verdicts as JSON lines and exit" );
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  if !paths = [] then (
    prerr_endline usage;
    exit 2);
  if !format <> "human" && !format <> "json" then (
    prerr_endline "speedup-lint: --format must be human or json";
    exit 2);
  List.iter
    (fun p ->
      if not (Sys.file_exists p) then (
        Printf.eprintf "speedup-lint: no such file: %s\n" p;
        exit 2))
    (List.rev !paths);
  (* Gather diagnostics from the selected backend; [unit_count] only
     feeds the "N clean" message. *)
  let diags, unit_count, unit_word =
    if !cmt then (
      let mods, load_diags = Lint_cmt.load ?as_dir:!as_dir (List.rev !paths) in
      if mods = [] then (
        Printf.eprintf
          "speedup-lint: no .cmt files under %s (run from _build/default \
           after a build)\n"
          (String.concat " " (List.rev !paths));
        exit 2);
      let defs = Lint_callgraph.collect mods in
      let tbl = Lint_callgraph.table defs in
      let reach = Lint_callgraph.reachable defs tbl in
      if !reachability then (
        print_endline (Lint_callgraph.reachability_json defs reach);
        exit 0);
      let r7, verdicts = Lint_lockset.analyze ~mods ~defs ~tbl in
      if !locks then (
        (match verdicts with
        | Jsonl.List items ->
            List.iter (fun o -> print_endline (Jsonl.to_string o)) items
        | other -> print_endline (Jsonl.to_string other));
        exit 0);
      let typed = List.concat_map Lint_cmt.check_module mods in
      let drift =
        if !check_config then Lint_callgraph.config_drift defs reach else []
      in
      ( List.sort_uniq Lint_diag.compare (load_diags @ typed @ r7 @ drift),
        List.length mods,
        "module" ))
    else
      (* Files named on the command line get --prefix for their logical
         path; files found under a directory argument already carry it. *)
      let files =
        List.concat_map
          (fun p ->
            if Sys.is_directory p then
              List.map (fun f -> ("", f)) (List.rev (collect_files [] p))
            else [ (!prefix, p) ])
          (List.rev !paths)
      in
      let diags =
        List.concat_map
          (fun (prefix, f) -> Lint_engine.lint_file ~prefix f)
          files
        |> List.sort_uniq Lint_diag.compare
      in
      (diags, List.length files, "file")
  in
  let diags =
    match !rules with
    | None -> diags
    | Some rs -> List.filter (fun (d : Lint_diag.t) -> List.mem d.rule rs) diags
  in
  let entries =
    match !baseline_path with
    | None -> []
    | Some p -> (
        match Lint_baseline.load p with
        | Ok entries -> entries
        | Error msg ->
            Printf.eprintf "speedup-lint: %s\n" msg;
            exit 2)
  in
  if !emit_baseline then (
    (match !baseline_path with
    | Some _ ->
        (* prune: keep the given baseline's still-matching entries *)
        print_string
          (Lint_baseline.emit_entries (Lint_baseline.prune entries diags))
    | None -> print_string (Lint_baseline.emit diags));
    exit 0);
  let live, baselined, stale = Lint_baseline.apply entries diags in
  (match !format with
  | "json" -> print_endline (Lint_diag.list_to_json live)
  | _ ->
      List.iter (fun d -> print_endline (Lint_diag.to_human d)) live;
      if baselined <> [] then
        Printf.printf "speedup-lint: %d finding(s) covered by the baseline\n"
          (List.length baselined);
      List.iter
        (fun (e : Lint_baseline.entry) ->
          Printf.printf
            "speedup-lint: stale baseline entry %s %s:%d (no longer fires — \
             remove it, or prune with --emit-baseline --baseline)\n"
            e.rule e.file e.line)
        stale;
      if live = [] then
        Printf.printf "speedup-lint: %d %s(s) clean\n" unit_count unit_word);
  exit (if live = [] then 0 else 1)
