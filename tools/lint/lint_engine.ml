(* speedup-lint analyzer: a purely syntactic pass over the parsetree
   enforcing the determinism and domain-safety contracts of
   DESIGN.md §8/§9.

   Rules:
     R1 shared-mutable-state  — no bare top-level mutable state in
        libraries reachable from Pool callbacks.
     R2 determinism           — Hashtbl iteration order must not leak
        into results: folds must be sorted with a keyed comparator or
        be commutative; iter is always suspect.
     R3 lock-discipline       — every Mutex.lock pairs with
        Fun.protect ~finally:(... Mutex.unlock ...) in the same
        function.
     R4 polymorphic-compare   — no polymorphic compare/hash/equality at
        the dedicated comparator types (Simplex, Vertex, Complex,
        Frac), and no bare polymorphic comparators inside the layer
        that defines them.
     R5 banned-nondeterminism — no ambient randomness or wall-clock
        reads in lib/.

   The analysis is conservative and has two escape hatches: inline
   [@lint.allow "RULE: reason"] attributes and the checked-in baseline
   (tools/lint/baseline.json).  See docs/LINT.md. *)

open Parsetree

(* ---- small helpers ---- *)

let flatten lid = try Longident.flatten lid with _ -> []

let ident_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (flatten txt)
  | _ -> None

let rec peel e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e) -> peel e
  | _ -> e

(* Does any identifier in [e] satisfy [pred]? *)
let expr_mentions pred e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } when pred (flatten txt) -> found := true
          | _ -> ());
          if not !found then Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

(* ---- suppression attributes ---- *)

let allow_attr = "lint.allow"

let string_payload = function
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

(* Returns the rules suppressed by [attrs]; malformed payloads are
   reported through [report]. *)
let suppressions_of_attrs ~report attrs =
  List.filter_map
    (fun a ->
      if a.attr_name.txt <> allow_attr then None
      else
        match string_payload a.attr_payload with
        | Some s ->
            let rule =
              match String.index_opt s ':' with
              | Some i -> String.sub s 0 i
              | None -> s
            in
            Some (String.trim rule)
        | None ->
            report a.attr_loc "lint"
              "[@lint.allow] needs a string payload, e.g. \
               [@lint.allow \"R2: commutative fold\"]";
            None)
    attrs

(* ---- per-file analysis state ---- *)

type ctx = {
  file : string;
  scope : Lint_config.scope;
  mutable mutable_fields : string list;  (* fields declared mutable here *)
  mutable suppressed : string list list;  (* stack of active suppressions *)
  mutable file_suppressed : string list;  (* from floating [@@@lint.allow] *)
  mutable open_depth : int;  (* enclosing M.(…) / let-open scopes *)
  mutable file_open : bool;  (* file has a structure-level open *)
  mutable cleared : expression list;  (* nodes proved safe, by identity *)
  mutable findings : Lint_diag.t list;
}

let active_suppressions ctx =
  ctx.file_suppressed @ List.concat ctx.suppressed

let report ctx ~rule ~loc msg =
  let sup = active_suppressions ctx in
  if not (List.mem rule sup || List.mem "all" sup) then
    ctx.findings <- Lint_diag.of_location ~rule ~file:ctx.file loc msg :: ctx.findings

let report_raw ctx loc rule msg =
  ctx.findings <- Lint_diag.of_location ~rule ~file:ctx.file loc msg :: ctx.findings

let clear ctx e = ctx.cleared <- e :: ctx.cleared
let is_cleared ctx e = List.memq e ctx.cleared

(* ---- vocabulary predicates ---- *)

let is_poly_comparator p = List.mem p Lint_config.poly_comparator_idents

(* Unqualified operators under an [open] (e.g. [Frac.(lo <= v)]) may
   resolve to the opened module's dedicated operators, not Stdlib's;
   treat them as non-polymorphic there. *)
let ambiguous_by_open ctx p =
  (ctx.open_depth > 0 || ctx.file_open) && List.length p = 1

let is_poly_op ctx p =
  List.mem p Lint_config.poly_compare_ops && not (ambiguous_by_open ctx p)
let is_sorter p = List.mem p Lint_config.sorters
let is_banned_ident p = List.mem p Lint_config.banned_idents

let is_ambient_random = function
  | "Random" :: rest -> (
      match rest with "State" :: _ -> false | _ -> true)
  | _ -> false

(* Hashtbl.fold / Hashtbl.iter / M.Tbl.fold …: iteration over a hash
   table, whose order is an implementation detail. *)
let hashtbl_iteration p =
  match List.rev p with
  | fn :: rev_prefix -> (
      let over_table =
        match List.rev rev_prefix with
        | [ "Hashtbl" ] -> true
        | prefix -> ( match List.rev prefix with "Tbl" :: _ -> true | _ -> false)
      in
      if not over_table then None
      else
        match fn with
        | "fold" -> Some `Fold
        | "iter" | "to_seq" | "to_seq_keys" | "to_seq_values" -> Some `Iter
        | _ -> None)
  | [] -> None

(* A comparator free of polymorphic compare/hash. *)
let comparator_is_keyed cmp =
  not
    (expr_mentions
       (fun p -> is_poly_comparator p || p = [ "Stdlib"; "compare" ])
       cmp)

(* Is [e] (the peeled head of an expression) an application of a sort
   sanitizer with a keyed comparator?  Returns the sorted operand(s)
   when the sort is fully applied, [] for a partial application. *)
let sort_sanitizer e =
  match (peel e).pexp_desc with
  | Pexp_apply (f, args) -> (
      match ident_path f with
      | Some p when is_sorter p -> (
          let positional =
            List.filter_map
              (function Asttypes.Nolabel, a -> Some a | _ -> None)
              args
          in
          match positional with
          | cmp :: rest when comparator_is_keyed cmp -> Some rest
          | _ -> None)
      | _ -> None)
  | _ -> None

(* Commutative fold recognizer: [fun _k _v acc -> acc <op> e] with a
   commutative/associative operator touching the accumulator. *)
let fold_is_commutative fn =
  let rec params acc e =
    match (peel e).pexp_desc with
    | Pexp_fun (_, _, pat, body) ->
        let name =
          match pat.ppat_desc with
          | Ppat_var { txt; _ } -> Some txt
          | Ppat_any -> None
          | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) ->
              Some txt
          | _ -> None
        in
        params (name :: acc) body
    | _ -> (acc, e)
  in
  match params [] (peel fn) with
  | acc_param :: _, body -> (
      match acc_param with
      | None -> false
      | Some acc_name -> (
          match (peel body).pexp_desc with
          | Pexp_apply (op, [ (_, a); (_, b) ]) -> (
              match ident_path op with
              | Some [ o ] when List.mem o Lint_config.commutative_ops ->
                  let is_acc e =
                    match ident_path (peel e) with
                    | Some [ n ] -> n = acc_name
                    | _ -> false
                  in
                  is_acc a || is_acc b
              | _ -> false)
          | _ -> false))
  | [], _ -> false

(* ---- R4 helpers ---- *)

let is_dedicated m = List.mem m Lint_config.dedicated_modules

let scalar_projection m fn =
  match List.assoc_opt m Lint_config.scalar_projections with
  | Some fns -> List.mem fn fns
  | None -> false

(* Is the value of [e] (possibly) of a dedicated abstract type?  Heads
   rooted in a dedicated module that are not scalar projections are
   treated as abstract. *)
let rec abstract_rooted e =
  match (peel e).pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match flatten txt with
      | [ m; fn ] when is_dedicated m -> not (scalar_projection m fn)
      | [ m; ("Set" | "Map" | "Tbl"); fn ] when is_dedicated m ->
          not (List.mem fn Lint_config.container_scalars)
      | _ -> false)
  | Pexp_apply (f, _) -> abstract_rooted f
  | Pexp_tuple es -> List.exists abstract_rooted es
  | Pexp_construct (_, Some e) | Pexp_variant (_, Some e) -> abstract_rooted e
  | Pexp_field (e, _) -> abstract_rooted e
  | _ -> false

(* ---- R6 helpers ---- *)

let is_interned m = List.mem m Lint_config.interned_modules

let interned_scalar m fn =
  match List.assoc_opt m Lint_config.interned_scalar_projections with
  | Some fns -> List.mem fn fns
  | None -> false

(* Is the value of [e] (possibly) of an interned type?  Same
   conservative shape as [abstract_rooted]: heads rooted in an interned
   module that are not scalar projections.  Returns the interned
   module's name so the finding can point at its dedicated
   comparators. *)
let rec interned_root e =
  match (peel e).pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match flatten txt with
      | [ m; fn ] when is_interned m && not (interned_scalar m fn) -> Some m
      | _ -> None)
  | Pexp_apply (f, _) -> interned_root f
  | Pexp_tuple es -> List.find_map interned_root es
  | Pexp_construct (_, Some e) | Pexp_variant (_, Some e) -> interned_root e
  | Pexp_field (e, _) -> interned_root e
  | _ -> None

(* "Simple scalar" expressions tolerated under polymorphic compare in
   the dedicated layer: the destructured-scalar idiom used inside the
   dedicated comparator definitions themselves. *)
let rec simple_scalar e =
  match (peel e).pexp_desc with
  | Pexp_ident { txt; _ } -> ( match flatten txt with [ _ ] -> true | _ -> false)
  | Pexp_constant _ -> true
  | Pexp_field (e, _) -> simple_scalar e
  | Pexp_tuple es -> List.for_all simple_scalar es
  | Pexp_apply (op, args) -> (
      match ident_path op with
      | Some [ o ]
        when List.mem o
               [ "+"; "-"; "*"; "/"; "mod"; "land"; "lor"; "lxor"; "abs"; "~-" ]
        ->
          List.for_all (fun (_, a) -> simple_scalar a) args
      | _ -> false)
  | _ -> false

(* In a lambda passed as an argument (comparator position), flag
   polymorphic compares applied to anything but simple scalars. *)
let check_comparator_lambda ctx body =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply (f, args) -> (
              match ident_path f with
              | Some p
                when (p = [ "compare" ] || p = [ "Stdlib"; "compare" ]
                    || p = [ "Hashtbl"; "hash" ])
                     && not
                          (List.for_all (fun (_, a) -> simple_scalar a) args) ->
                  report ctx ~rule:"R4" ~loc:e.pexp_loc
                    "polymorphic compare inside a comparator lambda in the \
                     dedicated-comparator layer; key it with Int.compare / \
                     String.compare or use the module's compare"
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it body

(* ---- R3 helpers ---- *)

let is_mutex_lock e =
  match (peel e).pexp_desc with
  | Pexp_apply (f, _) -> ident_path f = Some [ "Mutex"; "lock" ]
  | _ -> false

let is_protect_with_unlock e =
  match (peel e).pexp_desc with
  | Pexp_apply (f, args) ->
      ident_path f = Some [ "Fun"; "protect" ]
      && List.exists
           (fun (lbl, a) ->
             lbl = Asttypes.Labelled "finally"
             && expr_mentions (fun p -> p = [ "Mutex"; "unlock" ]) a)
           args
  | _ -> false

(* First meaningful expression of a continuation: peels let-bindings
   and sequencing so [Mutex.lock m; let x = Fun.protect … in …] and
   [Mutex.lock m; Fun.protect …; …] both count. *)
let rec protect_follows e =
  if is_protect_with_unlock e then true
  else
    match (peel e).pexp_desc with
    | Pexp_sequence (e1, _) -> protect_follows e1
    | Pexp_let (_, vbs, _) ->
        List.exists (fun vb -> is_protect_with_unlock vb.pvb_expr) vbs
    | _ -> false

(* ---- the walk ---- *)

let visit_expr ctx e =
  (* Pre-marking: recognize sanitized children before they are
     visited. *)
  (match e.pexp_desc with
  (* fold |> List.sort keyed_cmp *)
  | Pexp_apply (pipe, [ (_, lhs); (_, rhs) ])
    when ident_path pipe = Some [ "|>" ] -> (
      match sort_sanitizer rhs with
      | Some _ -> clear ctx (peel lhs)
      | None -> ())
  (* List.sort keyed_cmp (Hashtbl.fold …) *)
  | Pexp_apply (_, _) -> (
      match sort_sanitizer e with
      | Some operands -> List.iter (fun a -> clear ctx (peel a)) operands
      | None -> ())
  (* Mutex.lock m; <protected continuation> *)
  | Pexp_sequence (e1, e2) when is_mutex_lock e1 ->
      if protect_follows e2 then clear ctx (peel e1)
  | _ -> ());
  (* Node checks on the raw node: constraint/open wrappers are handled
     when recursion reaches the inner node itself. *)
  match e.pexp_desc with
  | Pexp_ident { txt; _ } ->
      let p = flatten txt in
      if
        ctx.scope.Lint_config.r5
        && (is_banned_ident p || is_ambient_random p)
        && not (List.mem p ctx.scope.Lint_config.r5_allowed)
      then
        report ctx ~rule:"R5" ~loc:e.pexp_loc
          (Printf.sprintf
             "'%s' is nondeterministic and forbidden in lib/; thread an \
              explicit Random.State (seeded by the caller) or move the \
              timing/IO to bin/ or bench/"
             (String.concat "." p))
  | Pexp_apply (f, args) -> (
      (match ident_path f with
      | Some p -> (
          (* R2: hash-order leaks. *)
          (match hashtbl_iteration p with
          | Some kind when not (is_cleared ctx e) ->
              let name = String.concat "." p in
              (match kind with
              | `Fold ->
                  let commutative =
                    match args with
                    | (_, fn) :: _ -> fold_is_commutative fn
                    | [] -> false
                  in
                  if not commutative then
                    report ctx ~rule:"R2" ~loc:e.pexp_loc
                      (Printf.sprintf
                         "%s result depends on hash iteration order; pipe it \
                          through List.sort with a keyed comparator (e.g. \
                          Int.compare), make the fold commutative, or \
                          suppress with [@lint.allow \"R2: reason\"]"
                         name)
              | `Iter ->
                  report ctx ~rule:"R2" ~loc:e.pexp_loc
                    (Printf.sprintf
                       "%s visits bindings in hash order; collect with \
                        Hashtbl.fold and sort with a keyed comparator, or \
                        suppress with [@lint.allow \"R2: reason\"]"
                       name))
          | _ -> ());
          (* R3: unprotected lock. *)
          if p = [ "Mutex"; "lock" ] && not (is_cleared ctx e) then
            report ctx ~rule:"R3" ~loc:e.pexp_loc
              "Mutex.lock without a following Fun.protect \
               ~finally:(… Mutex.unlock …) in the same function; an \
               exception in the critical section would leave the mutex \
               held (or use Mutex.protect)";
          (* R4: polymorphic compare applied at a dedicated type.
             R6: the same operations applied at an interned type —
             interned ids make structural compare/hash order- and
             schedule-dependent. *)
          if is_poly_op ctx p then
            List.iter
              (fun (_, a) ->
                if abstract_rooted a then
                  report ctx ~rule:"R4" ~loc:e.pexp_loc
                    (Printf.sprintf
                       "polymorphic '%s' applied to a value of a dedicated \
                        comparator type; use Simplex.compare / Vertex.compare \
                        / Complex.compare / Frac.compare (or key with \
                        Int.compare)"
                       (String.concat "." p))
                else
                  match
                    if ctx.scope.Lint_config.r6 then interned_root a else None
                  with
                  | Some m ->
                      report ctx ~rule:"R6" ~loc:e.pexp_loc
                        (Printf.sprintf
                           "structural '%s' applied to an interned value \
                            outside lib/topology; interned nodes carry \
                            process-local ids, so use %s.equal / %s.compare \
                            instead"
                           (String.concat "." p) m m)
                  | None -> ())
              args)
      | None -> ());
      (* R4 (dedicated layer): bare polymorphic comparators and
         comparator lambdas in argument position. *)
      if ctx.scope.Lint_config.r4_dedicated then
        List.iter
          (fun (_, a) ->
            let a = peel a in
            match a.pexp_desc with
            | Pexp_ident { txt; _ }
              when is_poly_comparator (flatten txt)
                   && not (ambiguous_by_open ctx (flatten txt)) ->
                report ctx ~rule:"R4" ~loc:a.pexp_loc
                  (Printf.sprintf
                     "bare polymorphic comparator '%s' passed in the \
                      dedicated-comparator layer; use Int.compare / \
                      String.compare or the module's compare"
                     (String.concat "." (flatten txt)))
            | Pexp_fun _ -> check_comparator_lambda ctx a
            | _ -> ())
          args)
  | _ -> ()

(* R1: top-level mutable state in Pool-reachable libraries. *)
let check_toplevel_binding ctx vb =
  let rec head e =
    match (peel e).pexp_desc with
    | Pexp_lazy e -> head e
    | d -> d
  in
  match head vb.pvb_expr with
  | Pexp_apply (f, _) -> (
      match ident_path f with
      | Some p when List.mem p Lint_config.mutable_creators ->
          report ctx ~rule:"R1" ~loc:vb.pvb_loc
            (Printf.sprintf
               "top-level '%s' creates shared mutable state in a library \
                reachable from Pool callbacks; use Atomic, guard every \
                access with a mutex and suppress with [@lint.allow \"R1: \
                reason\"], or move it into the function that uses it"
               (String.concat "." p))
      | Some p when (match List.rev p with "create" :: "Tbl" :: _ -> true | _ -> false)
        ->
          report ctx ~rule:"R1" ~loc:vb.pvb_loc
            (Printf.sprintf
               "top-level '%s' creates a shared hash table in a library \
                reachable from Pool callbacks; guard it or allowlist it"
               (String.concat "." p))
      | _ -> ())
  | Pexp_record (fields, _) ->
      if
        List.exists
          (fun ({ Asttypes.txt; _ }, _) ->
            match Longident.last txt with
            | fld -> List.mem fld ctx.mutable_fields
            | exception _ -> false)
          fields
      then
        report ctx ~rule:"R1" ~loc:vb.pvb_loc
          "top-level record with mutable fields is shared mutable state in a \
           library reachable from Pool callbacks; use Atomic fields or \
           allowlist it"
  | Pexp_array _ ->
      report ctx ~rule:"R1" ~loc:vb.pvb_loc
        "top-level array literal is shared mutable state in a library \
         reachable from Pool callbacks; use an immutable list/tuple or \
         allowlist it"
  | _ -> ()

(* Collect field names declared mutable anywhere in the file. *)
let collect_mutable_fields structure =
  let fields = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      type_declaration =
        (fun it td ->
          (match td.ptype_kind with
          | Ptype_record labels ->
              List.iter
                (fun ld ->
                  if ld.pld_mutable = Asttypes.Mutable then
                    fields := ld.pld_name.txt :: !fields)
                labels
          | _ -> ());
          Ast_iterator.default_iterator.type_declaration it td);
    }
  in
  it.structure it structure;
  !fields

let analyze_structure ctx structure =
  let report_attr loc rule msg = report_raw ctx loc rule msg in
  (* Floating [@@@lint.allow "R"] suppresses for the whole file. *)
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_attribute a when a.attr_name.txt = allow_attr ->
          ctx.file_suppressed <-
            suppressions_of_attrs ~report:report_attr [ a ] @ ctx.file_suppressed
      | _ -> ())
    structure;
  let push attrs =
    ctx.suppressed <-
      suppressions_of_attrs ~report:report_attr attrs :: ctx.suppressed
  in
  let pop () = ctx.suppressed <- List.tl ctx.suppressed in
  let toplevel = ref true in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          push e.pexp_attributes;
          visit_expr ctx e;
          let saved = !toplevel in
          toplevel := false;
          let opened =
            match e.pexp_desc with Pexp_open _ | Pexp_letop _ -> true | _ -> false
          in
          if opened then ctx.open_depth <- ctx.open_depth + 1;
          Ast_iterator.default_iterator.expr it e;
          if opened then ctx.open_depth <- ctx.open_depth - 1;
          toplevel := saved;
          pop ());
      value_binding =
        (fun it vb ->
          push vb.pvb_attributes;
          if !toplevel && ctx.scope.Lint_config.r1 then
            check_toplevel_binding ctx vb;
          Ast_iterator.default_iterator.value_binding it vb;
          pop ());
      structure_item =
        (fun it item ->
          let attrs =
            match item.pstr_desc with Pstr_eval (_, attrs) -> attrs | _ -> []
          in
          push attrs;
          (match item.pstr_desc with
          | Pstr_value _ | Pstr_module _ | Pstr_recmodule _ ->
              (* modules re-enter "top level" for their own items *)
              toplevel := true
          | Pstr_open _ ->
              ctx.file_open <- true;
              toplevel := false
          | _ -> toplevel := false);
          Ast_iterator.default_iterator.structure_item it item;
          pop ());
    }
  in
  it.structure it structure

(* ---- entry points ---- *)

let parse_diag ctx loc msg = report_raw ctx loc "parse" msg

let lint_source ~path source =
  let scope = Lint_config.classify path in
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  let ctx =
    {
      file = path;
      scope;
      mutable_fields = [];
      suppressed = [];
      file_suppressed = [];
      open_depth = 0;
      file_open = false;
      cleared = [];
      findings = [];
    }
  in
  (if Filename.check_suffix path ".mli" then
     (* Interfaces carry no expressions; parse for syntax only. *)
     try ignore (Parse.interface lexbuf) with
     | Syntaxerr.Error _ | Lexer.Error _ ->
         parse_diag ctx Location.none ("syntax error in " ^ path)
   else
     try
       let structure = Parse.implementation lexbuf in
       ctx.mutable_fields <- collect_mutable_fields structure;
       analyze_structure ctx structure
     with Syntaxerr.Error _ | Lexer.Error _ ->
       parse_diag ctx Location.none ("syntax error in " ^ path));
  List.sort_uniq Lint_diag.compare ctx.findings

let lint_file ?(prefix = "") real_path =
  let path = prefix ^ Filename.basename real_path in
  let path = if prefix = "" then real_path else path in
  let ic = open_in_bin real_path in
  let source =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  lint_source ~path source
