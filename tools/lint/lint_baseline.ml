(* Checked-in baseline: known findings that do not fail the build.
   The file is a JSON array of {"rule", "file", "line"} objects; it is
   kept empty on a healthy tree — entries exist only to land the linter
   on a tree with pre-existing findings, then burn down. *)

type entry = { rule : string; file : string; line : int }

let entry_of_json j =
  match
    (Jsonl.member "rule" j, Jsonl.member "file" j, Jsonl.member "line" j)
  with
  | Some (Jsonl.String rule), Some (Jsonl.String file), Some (Jsonl.Int line)
    ->
      Some { rule; file; line }
  | _ -> None

let load path =
  let ic = open_in_bin path in
  let source =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  if String.trim source = "" then Ok []
  else
    match Jsonl.of_string source with
    | Ok (Jsonl.List items) ->
        let entries = List.map entry_of_json items in
        if List.exists Option.is_none entries then
          Error (path ^ ": baseline entries need \"rule\", \"file\", \"line\"")
        else Ok (List.filter_map Fun.id entries)
    | Ok _ -> Error (path ^ ": baseline must be a JSON array")
    | Error msg -> Error (path ^ ": " ^ msg)

(* Files match when equal or when one is a '/'-boundary suffix of the
   other, so per-directory dune invocations (seeing "schedule.ml")
   agree with whole-tree invocations (seeing "lib/runtime/schedule.ml"). *)
let file_matches a b =
  let suffix_of short long =
    let ls = String.length short and ll = String.length long in
    ls < ll
    && String.sub long (ll - ls) ls = short
    && long.[ll - ls - 1] = '/'
  in
  a = b || suffix_of a b || suffix_of b a

let matches entry (d : Lint_diag.t) =
  entry.rule = d.rule && entry.line = d.line && file_matches entry.file d.file

(* Splits diagnostics into (live, baselined) and returns baseline
   entries that no longer match anything (stale). *)
let apply entries diags =
  let live, baselined =
    List.partition (fun d -> not (List.exists (fun e -> matches e d) entries)) diags
  in
  let stale =
    List.filter (fun e -> not (List.exists (matches e) diags)) entries
  in
  (live, baselined, stale)

let entry_to_json e =
  Jsonl.to_string
    (Jsonl.Obj
       [
         ("rule", Jsonl.String e.rule);
         ("file", Jsonl.String e.file);
         ("line", Jsonl.Int e.line);
       ])

let emit_entries entries =
  match List.map entry_to_json entries with
  | [] -> "[]\n"
  | entries -> "[\n  " ^ String.concat ",\n  " entries ^ "\n]\n"

let emit diags =
  emit_entries
    (List.map
       (fun (d : Lint_diag.t) -> { rule = d.rule; file = d.file; line = d.line })
       diags)

(* --emit-baseline with an existing --baseline: prune — keep exactly
   the entries that still match a finding, so the file shrinks
   monotonically and never absorbs new findings. *)
let prune entries diags =
  List.filter (fun e -> List.exists (matches e) diags) entries
