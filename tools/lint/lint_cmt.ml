(* Typed whole-program backend for speedup-lint.

   The syntactic pass (lint_engine) sees one parsetree at a time and
   matches identifiers by surface spelling, so aliases and opens can
   hide a banned identifier from it.  This module loads the `.cmt`
   binary annotations dune already emits for every compiled module and
   re-runs the per-module rules on the *typed* tree, where every
   identifier carries its resolved [Path.t] and every expression its
   inferred type:

     R1  top-level mutable state, detected by resolved creator path
         (an aliased [module H = Hashtbl] no longer hides a table) and
         by the typed mutability of record labels;
     R3  lock discipline, with [Mutex.lock] resolved by path;
     R4  polymorphic operations whose argument *type* mentions a
         dedicated comparator type — no syntactic rooting required;
     R5  banned nondeterminism by resolved path;
     R6  structural operations whose argument type mentions an
         interned type.

   The whole-program analyses built on top of the loaded modules live
   in lint_callgraph (pool-reachability inference, config drift) and
   lint_lockset (R7).  See docs/LINT.md. *)

open Typedtree

(* ---- loaded modules ---- *)

type modl = {
  modname : string;  (* compilation unit name, e.g. "Pool" *)
  src : string;  (* logical source path, e.g. "lib/parallel/pool.ml" *)
  scope : Lint_config.scope;
  str : structure;
}

let rec collect_cmts acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if name = ".git" then acc
           else collect_cmts acc (Filename.concat path name))
         acc
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

(* Loads every .cmt under [roots].  [as_dir], when given, replaces the
   directory of each recorded source path (fixture trees compiled
   outside dune get a logical home so scoping applies).  Unreadable
   files become "lint" diagnostics rather than hard failures; modules
   compiled more than once (byte and native) are deduplicated by
   source path. *)
let load ?as_dir roots =
  let diags = ref [] in
  let seen = Hashtbl.create 64 in
  let mods =
    List.concat_map (fun r -> List.rev (collect_cmts [] r)) roots
    |> List.filter_map (fun path ->
           match Cmt_format.read_cmt path with
           | exception e ->
               diags :=
                 Lint_diag.make ~rule:"lint" ~file:path ~line:0 ~col:0
                   ("cannot read cmt: " ^ Printexc.to_string e)
                 :: !diags;
               None
           | cmt -> (
               match cmt.cmt_annots with
               | Cmt_format.Implementation str ->
                   let src =
                     match cmt.cmt_sourcefile with
                     | Some s -> s
                     | None -> cmt.cmt_modname ^ ".ml"
                   in
                   let src =
                     match as_dir with
                     | Some d -> d ^ Filename.basename src
                     | None -> src
                   in
                   if Hashtbl.mem seen src then None
                   else (
                     Hashtbl.add seen src ();
                     Some
                       {
                         modname = cmt.cmt_modname;
                         src;
                         scope = Lint_config.classify src;
                         str;
                       })
               | _ -> None))
  in
  (List.sort (fun a b -> String.compare a.src b.src) mods, !diags)

(* ---- path normalization ---- *)

(* Typed trees spell stdlib paths as "Stdlib.Mutex.lock" or (through a
   direct unit reference) "Stdlib__Mutex.lock"; normalize both to
   "Mutex.lock" so vocabulary tables stay readable. *)
let strip_unit c =
  if String.length c > 8 && String.sub c 0 8 = "Stdlib__" then
    String.capitalize_ascii (String.sub c 8 (String.length c - 8))
  else c

let norm_components p =
  match String.split_on_char '.' (Path.name p) with
  | "Stdlib" :: (_ :: _ as rest) -> List.map strip_unit rest
  | comps -> List.map strip_unit comps

let norm_name p = String.concat "." (norm_components p)

(* Does [id] end with [suffix] at a dot boundary? *)
let dot_suffix id suffix =
  id = suffix
  ||
  let li = String.length id and ls = String.length suffix in
  li > ls && String.sub id (li - ls) ls = suffix && id.[li - ls - 1] = '.'

let is_pool_receiver id =
  List.exists (dot_suffix id) Lint_config.pool_callback_receivers

let is_receiver id =
  is_pool_receiver id || List.mem id Lint_config.spawn_receivers

(* Resolve a mention made inside nested modules [stack] (outermost
   first) against a whole-program definition table: try each enclosing
   module prefix from innermost to outermost, then the bare normalized
   name — which, for externals like "Mutex.lock", is already the
   canonical spelling. *)
let resolve_in ~mem ~stack comps =
  let rec go stack =
    match stack with
    | [] -> String.concat "." comps
    | _ ->
        let cand = String.concat "." (stack @ comps) in
        if mem cand then cand
        else go (List.filteri (fun i _ -> i < List.length stack - 1) stack)
  in
  go stack

(* ---- shared typed vocabulary ---- *)

type cell_kind = Ref | Table | Array | Record | Dls | Other

(* The typed view of R1's creator detection: does [e] construct
   mutable state?  Creator identifiers match by resolved path (so
   aliased modules are seen through); records consult the typed
   mutability of their labels (so aliased record types are too).
   Returns the kind and a display name. *)
let creator_kind_of_path p =
  let comps = norm_components p in
  (* A bare [ref] could be a local shadow; require Stdlib's. *)
  if comps = [ "ref" ] && Path.name p <> "Stdlib.ref" then None
  else if List.mem comps Lint_config.mutable_creators then
    let kind =
      match comps with
      | [ "ref" ] -> Ref
      | [ "Hashtbl"; "create" ] -> Table
      | [ "Domain"; "DLS"; "new_key" ] -> Dls
      | ("Array" | "Bytes") :: _ -> Array
      | _ -> Other
    in
    Some (kind, String.concat "." comps)
  else
    match List.rev comps with
    | "create" :: "Tbl" :: _ -> Some (Table, String.concat "." comps)
    | _ -> None

let rec creator_kind (e : expression) =
  match e.exp_desc with
  | Texp_apply (f, _) -> (
      match f.exp_desc with
      | Texp_ident (p, _, _) -> creator_kind_of_path p
      | _ -> None)
  | Texp_record { fields; _ } ->
      if
        Array.exists
          (fun ((ld : Types.label_description), _) ->
            ld.lbl_mut = Asttypes.Mutable)
          fields
      then Some (Record, "record with mutable fields")
      else None
  | Texp_array (_ :: _) -> Some (Array, "array literal")
  | Texp_lazy e -> creator_kind e
  | _ -> None

(* Polymorphic compare/hash by resolved path.  Single-component
   operators must resolve to Stdlib's (a dedicated [compare] defined
   in the current module is exactly what the rule recommends). *)
let is_poly_op_path p =
  match String.split_on_char '.' (Path.name p) with
  | [ "Stdlib"; op ] -> List.mem [ op ] Lint_config.poly_compare_ops
  | _ -> (
      match norm_components p with
      | [ "Hashtbl"; ("hash" | "seeded_hash") ] -> true
      | _ -> false)

(* Does the (syntactic structure of) type [ty] mention one of [names]
   as a constructor?  Abstract types stay opaque, so there are no deep
   false positives: a [Task.t] containing simplices does not match
   "Simplex.t". *)
let rec type_mentions names ty =
  match Types.get_desc ty with
  | Tconstr (p, args, _) ->
      List.mem (norm_name p) names || List.exists (type_mentions names) args
  | Ttuple ts -> List.exists (type_mentions names) ts
  | Tarrow (_, a, b, _) -> type_mentions names a || type_mentions names b
  | Tpoly (t, _) -> type_mentions names t
  | _ -> false

(* Does any identifier in [e] resolve to [name] (normalized)? *)
let mentions_path name e =
  let found = ref false in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.exp_desc with
          | Texp_ident (p, _, _) when norm_name p = name -> found := true
          | _ -> ());
          if not !found then Tast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

let is_apply_of name (e : expression) =
  match e.exp_desc with
  | Texp_apply (f, _) -> (
      match f.exp_desc with
      | Texp_ident (p, _, _) -> norm_name p = name
      | _ -> false)
  | _ -> false

let is_protect_with_unlock (e : expression) =
  match e.exp_desc with
  | Texp_apply (f, args) -> (
      match f.exp_desc with
      | Texp_ident (p, _, _) ->
          norm_name p = "Fun.protect"
          && List.exists
               (fun (lbl, a) ->
                 lbl = Asttypes.Labelled "finally"
                 &&
                 match a with
                 | Some a -> mentions_path "Mutex.unlock" a
                 | None -> false)
               args
      | _ -> false)
  | _ -> false

(* First meaningful expression of a continuation, as in the syntactic
   engine: peels sequencing and let-bindings. *)
let rec protect_follows (e : expression) =
  if is_protect_with_unlock e then true
  else
    match e.exp_desc with
    | Texp_sequence (e1, _) -> protect_follows e1
    | Texp_let (_, vbs, _) ->
        List.exists (fun vb -> is_protect_with_unlock vb.vb_expr) vbs
    | _ -> false

(* ---- per-module typed checks ---- *)

type ctx = {
  m : modl;
  mutable suppressed : string list list;
  mutable file_suppressed : string list;
  mutable cleared : expression list;
  mutable findings : Lint_diag.t list;
}

let active ctx = ctx.file_suppressed @ List.concat ctx.suppressed

let report ctx ~rule ~loc msg =
  let sup = active ctx in
  if not (List.mem rule sup || List.mem "all" sup) then
    ctx.findings <-
      Lint_diag.of_location ~rule ~file:ctx.m.src loc msg :: ctx.findings

(* Suppression parsing is shared with the syntactic engine: typedtree
   attributes are parsetree attributes. *)
let suppressions ctx attrs =
  Lint_engine.suppressions_of_attrs
    ~report:(fun loc rule msg ->
      ctx.findings <-
        Lint_diag.of_location ~rule ~file:ctx.m.src loc msg :: ctx.findings)
    attrs

(* Floating [@@@lint.allow] of a structure, for file scope. *)
let floating_suppressions ctx (str : structure) =
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_attribute a when a.Parsetree.attr_name.txt = Lint_engine.allow_attr
        ->
          ctx.file_suppressed <- suppressions ctx [ a ] @ ctx.file_suppressed
      | _ -> ())
    str.str_items

let clear ctx e = ctx.cleared <- e :: ctx.cleared
let is_cleared ctx e = List.memq e ctx.cleared

let check_poly_apply ctx (e : expression) f args =
  match f.exp_desc with
  | Texp_ident (p, _, _) when is_poly_op_path p ->
      let op = norm_name p in
      List.iter
        (fun (_, a) ->
          match a with
          | None -> ()
          | Some a ->
              if type_mentions Lint_config.dedicated_type_names a.exp_type then
                report ctx ~rule:"R4" ~loc:e.exp_loc
                  (Printf.sprintf
                     "polymorphic '%s' applied to a value whose type involves \
                      a dedicated comparator type; use Simplex.compare / \
                      Vertex.compare / Complex.compare / Frac.compare (or key \
                      with Int.compare)"
                     op)
              else if
                ctx.m.scope.Lint_config.r6
                && type_mentions Lint_config.interned_type_names a.exp_type
              then
                report ctx ~rule:"R6" ~loc:e.exp_loc
                  (Printf.sprintf
                     "structural '%s' applied to a value whose type involves \
                      an interned type outside lib/topology; interned nodes \
                      carry process-local ids, so use the module's equal / \
                      compare / hash instead"
                     op))
        args
  | _ -> ()

let check_module m =
  let ctx =
    { m; suppressed = []; file_suppressed = []; cleared = []; findings = [] }
  in
  floating_suppressions ctx m.str;
  let push attrs = ctx.suppressed <- suppressions ctx attrs :: ctx.suppressed in
  let pop () = ctx.suppressed <- List.tl ctx.suppressed in
  let toplevel = ref true in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun it e ->
          push e.exp_attributes;
          (* Pre-marking: Mutex.lock m; <protected continuation>. *)
          (match e.exp_desc with
          | Texp_sequence (e1, e2)
            when is_apply_of "Mutex.lock" e1 && protect_follows e2 ->
              clear ctx e1
          | _ -> ());
          (match e.exp_desc with
          | Texp_ident (p, _, _) ->
              let comps = norm_components p in
              if
                ctx.m.scope.Lint_config.r5
                && (List.mem comps Lint_config.banned_idents
                   || Lint_engine.is_ambient_random comps)
                && not (List.mem comps ctx.m.scope.Lint_config.r5_allowed)
              then
                report ctx ~rule:"R5" ~loc:e.exp_loc
                  (Printf.sprintf
                     "'%s' is nondeterministic and forbidden in lib/; thread \
                      an explicit Random.State (seeded by the caller) or move \
                      the timing/IO to bin/ or bench/"
                     (String.concat "." comps))
          | Texp_apply (f, args) ->
              if is_apply_of "Mutex.lock" e && not (is_cleared ctx e) then
                report ctx ~rule:"R3" ~loc:e.exp_loc
                  "Mutex.lock without a following Fun.protect ~finally:(… \
                   Mutex.unlock …) in the same function; an exception in the \
                   critical section would leave the mutex held (or use \
                   Mutex.protect)";
              check_poly_apply ctx e f args
          | _ -> ());
          let saved = !toplevel in
          toplevel := false;
          Tast_iterator.default_iterator.expr it e;
          toplevel := saved;
          pop ());
      value_binding =
        (fun it vb ->
          push vb.vb_attributes;
          (if !toplevel && ctx.m.scope.Lint_config.r1 then
             match creator_kind vb.vb_expr with
             | Some (Record, _) ->
                 report ctx ~rule:"R1" ~loc:vb.vb_loc
                   "top-level record with mutable fields is shared mutable \
                    state in a library reachable from Pool callbacks; use \
                    Atomic fields or allowlist it"
             | Some (Array, "array literal") ->
                 report ctx ~rule:"R1" ~loc:vb.vb_loc
                   "top-level array literal is shared mutable state in a \
                    library reachable from Pool callbacks; use an immutable \
                    list/tuple or allowlist it"
             | Some (_, name) ->
                 report ctx ~rule:"R1" ~loc:vb.vb_loc
                   (Printf.sprintf
                      "top-level '%s' creates shared mutable state in a \
                       library reachable from Pool callbacks; use Atomic, \
                       guard every access with a mutex and suppress with \
                       [@lint.allow \"R1: reason\"], or move it into the \
                       function that uses it"
                      name)
             | None -> ());
          Tast_iterator.default_iterator.value_binding it vb;
          pop ());
      structure_item =
        (fun it item ->
          let attrs =
            match item.str_desc with Tstr_eval (_, attrs) -> attrs | _ -> []
          in
          push attrs;
          (match item.str_desc with
          | Tstr_value _ | Tstr_module _ | Tstr_recmodule _ ->
              (* modules re-enter "top level" for their own items *)
              toplevel := true
          | _ -> toplevel := false);
          Tast_iterator.default_iterator.structure_item it item;
          pop ());
    }
  in
  it.structure it m.str;
  List.sort_uniq Lint_diag.compare ctx.findings
