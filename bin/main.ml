(* speedup — command-line front end to the reproduction.

   Subcommands: experiment, complex, solve, closure, model, run-algo,
   list, cert, serve, query. *)

open Cmdliner

let model_conv =
  let parse s =
    match Model.of_string s with
    | Some m -> Ok m
    | None -> Error (`Msg (Printf.sprintf "unknown model %S" s))
  in
  Arg.conv (parse, fun ppf m -> Format.pp_print_string ppf (Model.name m))

let frac_conv =
  let parse s =
    match String.split_on_char '/' s with
    | [ n ] -> (
        match int_of_string_opt n with
        | Some n -> Ok (Frac.of_int n)
        | None -> Error (`Msg "bad fraction"))
    | [ n; d ] -> (
        match (int_of_string_opt n, int_of_string_opt d) with
        | Some n, Some d when d <> 0 -> Ok (Frac.make n d)
        | _ -> Error (`Msg "bad fraction"))
    | _ -> Error (`Msg "bad fraction")
  in
  Arg.conv (parse, fun ppf q -> Frac.pp ppf q)

(* ---- experiment ---- *)

let experiment_cmd =
  let id =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"ID" ~doc:"Experiment id (e1..e14) or 'all'.")
  in
  let run id =
    let tables =
      if id = "all" then Suite.run_all ()
      else
        match Suite.find id with
        | Some e -> e.Suite.run ()
        | None ->
            Printf.eprintf "unknown experiment %s; try 'speedup list'\n" id;
            exit 2
    in
    Suite.print_tables tables;
    if Suite.all_ok tables then 0 else 1
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Run a reproduction experiment (see DESIGN.md).")
    Term.(const run $ id)

let list_cmd =
  let run () =
    List.iter
      (fun e -> Printf.printf "%-4s %s\n" e.Suite.id e.Suite.description)
      Suite.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the experiments.") Term.(const run $ const ())

(* ---- complex ---- *)

let complex_cmd =
  let model =
    Arg.(value & opt model_conv Model.Immediate
         & info [ "model" ] ~docv:"MODEL" ~doc:"collect, snapshot, or immediate.")
  in
  let n = Arg.(value & opt int 3 & info [ "n" ] ~doc:"Number of processes.") in
  let rounds = Arg.(value & opt int 1 & info [ "rounds"; "t" ] ~doc:"Rounds.") in
  let tas = Arg.(value & flag & info [ "tas" ] ~doc:"Augment IIS with test\\&set.") in
  let dot =
    Arg.(value & opt (some string) None
         & info [ "dot" ] ~docv:"FILE" ~doc:"Write the 1-skeleton as Graphviz DOT.")
  in
  let run model n rounds tas dot =
    let sigma = Simplex.of_list (List.init n (fun i -> (i + 1, Value.Int (i + 1)))) in
    let c =
      if tas then
        Augmented.protocol_complex ~box:Black_box.test_and_set
          ~alpha:(Augmented.alpha_const Value.Unit) sigma rounds
      else Model.protocol_complex model sigma rounds
    in
    Format.printf "P^(%d)(σ) in %s%s: %a@." rounds (Model.name model)
      (if tas then "+test&set" else "")
      Complex.pp_stats c;
    (match dot with
    | Some path ->
        Dot.write_file path c;
        Printf.printf "wrote %s\n" path
    | None -> ());
    0
  in
  Cmd.v
    (Cmd.info "complex" ~doc:"Protocol complex statistics and DOT export.")
    Term.(const run $ model $ n $ rounds $ tas $ dot)

(* ---- solve ---- *)

let task_of ~name ~n ~m ~eps =
  match name with
  | "consensus" -> Consensus.binary ~n
  | "relaxed-consensus" ->
      Consensus.relaxed ~n ~values:[ Value.Int 0; Value.Int 1 ]
  | "aa" -> Approx_agreement.task ~n ~m ~eps
  | "liberal-aa" -> Approx_agreement.liberal ~n ~m ~eps
  | "2set" -> Set_agreement.task ~n ~k:2 ~values:[ Value.Int 0; Value.Int 1; Value.Int 2 ]
  | other -> failwith (Printf.sprintf "unknown task %S" other)

let task_arg =
  Arg.(value & opt string "consensus"
       & info [ "task" ] ~docv:"TASK"
           ~doc:"consensus, relaxed-consensus, aa, liberal-aa, or 2set.")

let n_arg = Arg.(value & opt int 3 & info [ "n" ] ~doc:"Number of processes.")
let m_arg = Arg.(value & opt int 4 & info [ "m" ] ~doc:"Grid denominator for AA tasks.")

let eps_arg =
  Arg.(value & opt frac_conv (Frac.make 1 4)
       & info [ "eps" ] ~docv:"EPS" ~doc:"Precision for AA tasks, e.g. 1/4.")

(* Algebra terms arrive as strings and are parsed in the command body,
   so a malformed term exits 2 with the parser's message (matching the
   other usage errors) rather than cmdliner's generic CLI error. *)
let algebra_arg =
  Arg.(value & opt (some string) None
       & info [ "algebra" ] ~docv:"TERM"
           ~doc:"Model-algebra term (docs/MODELS.md), e.g. '(inter iis \
                 snapshot)'; overrides --model.")

let solve_cmd =
  let model =
    Arg.(value & opt model_conv Model.Immediate & info [ "model" ] ~doc:"Iterated model.")
  in
  let rounds = Arg.(value & opt int 1 & info [ "rounds"; "t" ] ~doc:"Rounds.") in
  let tas = Arg.(value & flag & info [ "tas" ] ~doc:"Augment IIS with test\\&set.") in
  let binary_inputs =
    Arg.(value & flag
         & info [ "binary-inputs" ] ~doc:"Restrict AA inputs to {0,1} (lower-bound family).")
  in
  let run task n m eps model algebra rounds tas binary_inputs =
    let task = task_of ~name:task ~n ~m ~eps in
    let inputs =
      if binary_inputs then
        Some (Complex.all_simplices (Approx_agreement.binary_input_complex ~n))
      else None
    in
    let verdict =
      match algebra with
      | Some term -> (
          match Algebra.parse term with
          | Error msg ->
              Printf.eprintf "speedup solve: %s\n" msg;
              exit 2
          | Ok t ->
              let inputs =
                match inputs with
                | Some i -> i
                | None -> Task.input_simplices task
              in
              Solvability.decide ~inputs
                ~protocol:(fun sigma -> Algebra.protocol_complex t sigma rounds)
                ~delta:(Task.delta task) ())
      | None ->
          if tas then
            Solvability.task_in_augmented ?inputs ~box:Black_box.test_and_set
              ~alpha:(Augmented.alpha_const Value.Unit) task ~rounds
          else Solvability.task_in_model ?inputs model task ~rounds
    in
    (match verdict with
    | Solvability.Solvable _ ->
        Printf.printf "%s: SOLVABLE in %d round(s)\n" task.Task.name rounds
    | Solvability.Unsolvable ->
        Printf.printf "%s: UNSOLVABLE in %d round(s)\n" task.Task.name rounds
    | Solvability.Undecided -> Printf.printf "%s: undecided (node limit)\n" task.Task.name);
    0
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Decide t-round solvability of a task.")
    Term.(const run $ task_arg $ n_arg $ m_arg $ eps_arg $ model $ algebra_arg
          $ rounds $ tas $ binary_inputs)

(* ---- closure ---- *)

let closure_cmd =
  let model =
    Arg.(value & opt model_conv Model.Immediate & info [ "model" ] ~doc:"Iterated model.")
  in
  let tas = Arg.(value & flag & info [ "tas" ] ~doc:"Augment IIS with test\\&set.") in
  let run task n m eps model algebra tas =
    let task = task_of ~name:task ~n ~m ~eps in
    let op =
      match algebra with
      | Some term -> (
          match Algebra.parse term with
          | Error msg ->
              Printf.eprintf "speedup closure: %s\n" msg;
              exit 2
          | Ok t -> Round_op.algebra t)
      | None -> if tas then Round_op.test_and_set else Round_op.plain model
    in
    let inputs = Task.input_simplices task in
    let fixed = ref true in
    List.iter
      (fun sigma ->
        let d' = Closure.delta ~op task sigma in
        let d = Task.delta task sigma in
        if not (Complex.equal d' d) then begin
          fixed := false;
          Format.printf "σ = %a: Δ has %d facets, Δ' has %d facets@." Simplex.pp
            sigma (Complex.facet_count d) (Complex.facet_count d')
        end)
      inputs;
    if !fixed then
      Printf.printf "%s is a fixed point of CL_[%s] (Δ' = Δ on all %d input simplices)\n"
        task.Task.name (Round_op.name op) (List.length inputs)
    else Printf.printf "%s is NOT a fixed point of CL_[%s]\n" task.Task.name (Round_op.name op);
    0
  in
  Cmd.v
    (Cmd.info "closure" ~doc:"Compute the closure of a task and test the fixed-point property.")
    Term.(const run $ task_arg $ n_arg $ m_arg $ eps_arg $ model $ algebra_arg
          $ tas)

(* ---- model (algebra) ---- *)

let model_eval_cmd =
  let term_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"TERM"
             ~doc:"Model-algebra term, e.g. '(inter iis snapshot)'.")
  in
  let run term n =
    match Algebra.parse term with
    | Error msg ->
        Printf.eprintf "speedup model eval: %s\n" msg;
        2
    | Ok t ->
        let sigma =
          Simplex.of_list (List.init n (fun i -> (i + 1, Value.Int (i + 1))))
        in
        let facets = Algebra.facets t sigma in
        Format.printf "canonical: %s@." (Algebra.to_string t);
        Format.printf "one round on σ (n=%d): %d facet(s), %a@." n
          (List.length facets)
          Complex.pp_stats
          (Complex.of_facets facets);
        Format.printf "allows solo executions: %b@." (Algebra.allows_solo t sigma);
        0
  in
  Cmd.v
    (Cmd.info "eval"
       ~doc:"Parse a model-algebra term; print its canonical form, one-round \
             statistics, and the solo-execution hypothesis.  Exits 2 on a \
             malformed term.")
    Term.(const run $ term_arg $ n_arg)

let model_equiv_cmd =
  let lhs_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"LHS" ~doc:"Left model-algebra term.")
  in
  let rhs_arg =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"RHS" ~doc:"Right model-algebra term.")
  in
  let n =
    Arg.(value & opt int 2
         & info [ "n" ] ~docv:"N"
             ~doc:"Probe the task battery at every instance size up to N.")
  in
  let run lhs rhs n =
    match (Algebra.parse lhs, Algebra.parse rhs) with
    | Error msg, _ | _, Error msg ->
        Printf.eprintf "speedup model equiv: %s\n" msg;
        2
    | Ok lhs, Ok rhs ->
        let outcome = Equiv.decide ~n lhs rhs in
        List.iter
          (fun (p : Equiv.probe) ->
            Printf.printf "%-44s %s\n" p.Equiv.label
              (if String.equal p.Equiv.lhs p.Equiv.rhs then "agree"
               else
                 Printf.sprintf "DIFFER (lhs %s, rhs %s)" p.Equiv.lhs
                   p.Equiv.rhs))
          outcome.Equiv.probes;
        if outcome.Equiv.equivalent then begin
          Printf.printf "%s == %s (task-solvability equivalent at bound n=%d)\n"
            (Algebra.to_string lhs) (Algebra.to_string rhs) n;
          0
        end
        else begin
          Printf.printf "%s =/= %s (distinguished at bound n=%d)\n"
            (Algebra.to_string lhs) (Algebra.to_string rhs) n;
          1
        end
  in
  Cmd.v
    (Cmd.info "equiv"
       ~doc:"Decide task-solvability equivalence of two model-algebra terms \
             on small instances via the certified closure/solver pipeline.  \
             Exits 0 when equivalent, 1 when distinguished, 2 on a malformed \
             term.")
    Term.(const run $ lhs_arg $ rhs_arg $ n)

let model_cmd =
  Cmd.group
    (Cmd.info "model"
       ~doc:"Evaluate and compare model-algebra terms (see docs/MODELS.md).")
    [ model_eval_cmd; model_equiv_cmd ]

(* ---- run-algo ---- *)

let run_algo_cmd =
  let algo =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"ALGO"
             ~doc:"halving, thirds, tas-consensus, bc-consensus, or bc-bitwise.")
  in
  let n = n_arg and m = m_arg and eps = eps_arg in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let count = Arg.(value & opt int 200 & info [ "count" ] ~doc:"Random schedules.") in
  let run algo n m eps seed count =
    let participants = List.init n (fun i -> i + 1) in
    let describe task protocol box rounds inputs =
      let schedules =
        Adversary.random_suite ~model:Model.Immediate ~boxed:(box <> None)
          ~participants ~rounds ~seed ~count
      in
      let failures = Adversary.check_task ?box protocol task ~inputs ~schedules in
      Printf.printf "%s: %d rounds, %d random schedules, %d violations\n"
        protocol.Protocol.name rounds (List.length schedules) (List.length failures);
      List.iteri
        (fun k f -> if k < 3 then Printf.printf "  %s\n" f.Adversary.reason)
        failures;
      if failures = [] then 0 else 1
    in
    let aa_inputs =
      List.mapi
        (fun idx i -> (i, Value.frac (if idx = n - 1 then m else idx * m / n) m))
        participants
    in
    match algo with
    | "halving" ->
        let rounds = Aa_halving.rounds_needed ~eps in
        describe (Approx_agreement.task ~n ~m ~eps) (Aa_halving.protocol ~m ~eps)
          None rounds aa_inputs
    | "thirds" ->
        let rounds = Aa_thirds.rounds_needed ~eps in
        describe (Approx_agreement.task ~n:2 ~m ~eps) (Aa_thirds.protocol ~m ~eps)
          None rounds
          [ (1, Value.frac 0 1); (2, Value.frac 1 1) ]
    | "tas-consensus" ->
        describe (Consensus.binary ~n:2) Tas_consensus2.protocol
          (Some Sim_object.test_and_set) 1
          [ (1, Value.Int 0); (2, Value.Int 1) ]
    | "bc-consensus" ->
        let rounds = Bc_consensus.rounds_needed ~n in
        describe
          (Consensus.multi ~n ~values:(List.map (fun i -> Value.Int i) participants))
          (Bc_consensus.protocol ~n)
          (Some Sim_object.consensus) rounds
          (List.map (fun i -> (i, Value.Int i)) participants)
    | "bc-bitwise" ->
        let k = Frac.ceil_log ~base:2 (Frac.of_int m) in
        let rounds = Bc_bitwise_aa.rounds_needed ~eps in
        describe (Approx_agreement.task ~n ~m ~eps)
          (Bc_bitwise_aa.protocol ~k ~eps)
          (Some Sim_object.consensus) rounds aa_inputs
    | other ->
        Printf.eprintf "unknown algorithm %S\n" other;
        2
  in
  Cmd.v
    (Cmd.info "run-algo" ~doc:"Run a paper algorithm in the simulator under random adversaries.")
    Term.(const run $ algo $ n $ m $ eps $ seed $ count)

(* ---- figure ---- *)

let figure_cmd =
  let which =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FIGURE"
             ~doc:"One of: 4 (2-proc consensus with test\\&set), 5 (3-proc IIS+test\\&set), 7 (IIS+binary consensus), 8a/8b/8c/8d (collect / snapshot / immediate complexes).")
  in
  let out =
    Arg.(value & opt string "figure.dot"
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output DOT file.")
  in
  let run which out =
    let sigma3 =
      Simplex.of_list [ (1, Value.Int 1); (2, Value.Int 2); (3, Value.Int 3) ]
    in
    let sigma2 = Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 1) ] in
    let unit_alpha = Augmented.alpha_const Value.Unit in
    let complex =
      match which with
      | "4" ->
          Some
            (Complex.of_facets
               (Augmented.one_round_facets ~box:Black_box.test_and_set
                  ~alpha:unit_alpha ~round:1 sigma2))
      | "5" ->
          Some
            (Complex.of_facets
               (Augmented.one_round_facets ~box:Black_box.test_and_set
                  ~alpha:unit_alpha ~round:1 sigma3))
      | "7" ->
          Some
            (Complex.of_facets
               (Augmented.one_round_facets ~box:Black_box.bin_consensus
                  ~alpha:(Augmented.alpha_of_beta (fun i -> i > 1))
                  ~round:1 sigma3))
      | "8a" | "8b" ->
          Some (Complex.of_facets (Model.one_round_facets Model.Immediate sigma3))
      | "8c" ->
          Some (Complex.of_facets (Model.one_round_facets Model.Snapshot sigma3))
      | "8d" ->
          Some (Complex.of_facets (Model.one_round_facets Model.Collect sigma3))
      | _ -> None
    in
    match complex with
    | None ->
        Printf.eprintf "unknown figure %S (try 4, 5, 7, 8a, 8b, 8c, 8d)\n" which;
        2
    | Some c ->
        Dot.write_file out c;
        Format.printf "figure %s -> %s (%a)@." which out Complex.pp_stats c;
        0
  in
  Cmd.v
    (Cmd.info "figure" ~doc:"Export a paper figure's complex as Graphviz DOT.")
    Term.(const run $ which $ out)

(* ---- svg ---- *)

let svg_cmd =
  let model =
    Arg.(value & opt model_conv Model.Immediate & info [ "model" ] ~doc:"Iterated model.")
  in
  let n = Arg.(value & opt int 3 & info [ "n" ] ~doc:"Number of processes (2 or 3).") in
  let rounds = Arg.(value & opt int 1 & info [ "rounds"; "t" ] ~doc:"Rounds.") in
  let size = Arg.(value & opt int 640 & info [ "size" ] ~doc:"Image size in pixels.") in
  let out =
    Arg.(value & opt string "complex.svg"
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output SVG file.")
  in
  let run model n rounds size out =
    if n < 2 || n > 3 then begin
      Printf.eprintf "svg rendering supports n = 2 or 3\n";
      2
    end
    else begin
      let sigma =
        Simplex.of_list (List.init n (fun i -> (i + 1, Value.Int (i + 1))))
      in
      let c = Model.protocol_complex model sigma rounds in
      Geometry.write_svg ~size out sigma c;
      Format.printf "P^(%d) in %s -> %s (%a)@." rounds (Model.name model) out
        Complex.pp_stats c;
      0
    end
  in
  Cmd.v
    (Cmd.info "svg" ~doc:"Render an iterated protocol complex as SVG (Figure 8 style).")
    Term.(const run $ model $ n $ rounds $ size $ out)

(* ---- cert ---- *)

let cert_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "dir" ] ~docv:"DIR"
           ~doc:"Certificate store root (default: \\$CERT_CACHE_DIR).")

let with_store dir k =
  (match dir with Some d -> Cert.Store.set_dir (Some d) | None -> ());
  match Cert.Store.dir () with
  | None ->
      Printf.eprintf "no certificate store: pass --dir or set CERT_CACHE_DIR\n";
      2
  | Some root -> k root

let verify_cert cert =
  match Cert.verify Cert_registry.env cert with
  | Ok () -> `Ok
  | Error (Cert.Unsupported msg) -> `Skip msg
  | Error (Cert.Invalid msg) -> `Fail msg

let cert_verify_cmd =
  let file =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"Certificate file (canonical S-expression).")
  in
  let run file =
    match
      try
        let ic = open_in_bin file in
        Ok
          (Fun.protect
             ~finally:(fun () -> close_in_noerr ic)
             (fun () -> really_input_string ic (in_channel_length ic)))
      with Sys_error msg -> Error msg
    with
    | Error msg ->
        Printf.eprintf "%s\n" msg;
        1
    | Ok contents -> (
    match Cert.Sexp.of_string (String.trim contents) with
    | Error msg ->
        Printf.eprintf "%s: unreadable: %s\n" file msg;
        1
    | Ok sexp -> (
        match Cert.decode sexp with
        | Error msg ->
            Printf.eprintf "%s: undecodable: %s\n" file msg;
            1
        | Ok cert -> (
            match verify_cert cert with
            | `Ok ->
                Printf.printf "%s: OK (%s: %s)\n" file (Cert.kind_name cert)
                  (Cert.subject cert);
                0
            | `Skip msg ->
                Printf.printf "%s: SKIP (%s)\n" file msg;
                0
            | `Fail msg ->
                Printf.eprintf "%s: INVALID: %s\n" file msg;
                1)))
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Check one exported certificate file.")
    Term.(const run $ file)

let cert_ls_cmd =
  let run dir =
    with_store dir (fun _root ->
        List.iter
          (fun (key, path) ->
            match Cert.Store.load key with
            | None -> Printf.printf "%s  <unreadable>\n" key
            | Some sexp -> (
                match Cert.decode sexp with
                | Error msg -> Printf.printf "%s  <stale: %s>\n" key msg
                | Ok cert ->
                    ignore path;
                    Printf.printf "%s  %-11s %s\n" key (Cert.kind_name cert)
                      (Cert.subject cert)))
          (Cert.Store.entries ());
        0)
  in
  Cmd.v
    (Cmd.info "ls" ~doc:"List the store's certificates with their subjects.")
    Term.(const run $ cert_dir_arg)

let cert_verify_store_cmd =
  let run dir =
    with_store dir (fun root ->
        let ok = ref 0 and skipped = ref 0 and failed = ref 0 in
        List.iter
          (fun (key, _path) ->
            match Cert.Store.load key with
            | None ->
                incr failed;
                Printf.printf "%s FAIL unreadable\n" key
            | Some sexp -> (
                match Cert.decode sexp with
                | Error msg ->
                    incr failed;
                    Printf.printf "%s FAIL %s\n" key msg
                | Ok cert -> (
                    match verify_cert cert with
                    | `Ok -> incr ok
                    | `Skip msg ->
                        incr skipped;
                        Printf.printf "%s SKIP %s\n" key msg
                    | `Fail msg ->
                        incr failed;
                        Printf.printf "%s FAIL %s: %s\n" key
                          (Cert.subject cert) msg)))
          (Cert.Store.entries ());
        Printf.printf "%s: %d verified, %d skipped (unresolvable names), %d failed\n"
          root !ok !skipped !failed;
        if !failed = 0 then 0 else 1)
  in
  Cmd.v
    (Cmd.info "verify-store"
       ~doc:"Re-validate every certificate in the store with the standard \
             task/operator registry.")
    Term.(const run $ cert_dir_arg)

let cert_gc_cmd =
  let run dir =
    with_store dir (fun root ->
        let removed =
          Cert.Store.gc ~keep:(fun ~key:_ sexp ->
              match Cert.decode sexp with
              | Error _ -> false
              | Ok cert -> (
                  match verify_cert cert with
                  | `Ok | `Skip _ -> true
                  | `Fail _ -> false))
        in
        Printf.printf "%s: removed %d file(s)\n" root removed;
        0)
  in
  Cmd.v
    (Cmd.info "gc"
       ~doc:"Drop quarantined, stale-version, undecodable, and invalid entries.")
    Term.(const run $ cert_dir_arg)

let cert_export_cmd =
  let key_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"KEY" ~doc:"Store key (as printed by 'cert ls').")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Output file (default: stdout).")
  in
  let run dir key out =
    with_store dir (fun _root ->
        match Cert.Store.load key with
        | None ->
            Printf.eprintf "no entry for key %s\n" key;
            1
        | Some sexp -> (
            let text = Cert.Sexp.to_string sexp ^ "\n" in
            match out with
            | None ->
                print_string text;
                0
            | Some file ->
                let oc = open_out_bin file in
                Fun.protect
                  ~finally:(fun () -> close_out_noerr oc)
                  (fun () -> output_string oc text);
                Printf.printf "wrote %s\n" file;
                0))
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Print or save one certificate by key.")
    Term.(const run $ cert_dir_arg $ key_arg $ out)

let cert_stats_cmd =
  let run dir =
    with_store dir (fun root ->
        let n = List.length (Cert.Store.entries ()) in
        Printf.printf "%s: %d certificate(s)\n" root n;
        0)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Entry count of the store.")
    Term.(const run $ cert_dir_arg)

let cert_cmd =
  Cmd.group
    (Cmd.info "cert"
       ~doc:"Inspect, verify, export, and garbage-collect proof certificates \
             (see docs/CERTIFICATES.md).")
    [ cert_verify_cmd; cert_ls_cmd; cert_verify_store_cmd; cert_gc_cmd;
      cert_export_cmd; cert_stats_cmd ]

(* ---- serve / query ---- *)

let addr_args =
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")
  in
  let host =
    Arg.(value & opt string "127.0.0.1"
         & info [ "host" ] ~docv:"HOST" ~doc:"TCP host (with --port).")
  in
  let port =
    Arg.(value & opt (some int) None
         & info [ "port" ] ~docv:"PORT" ~doc:"TCP port (0 picks a free one).")
  in
  let combine socket host port =
    match (socket, port) with
    | Some path, None -> Ok (Server.Unix_path path)
    | None, Some p -> Ok (Server.Tcp (host, p))
    | None, None -> Ok (Server.Unix_path "speedup.sock")
    | Some _, Some _ -> Error (`Msg "--socket and --port are exclusive")
  in
  Term.(term_result (const combine $ socket $ host $ port))

let serve_cmd =
  let workers =
    Arg.(value & opt int 2
         & info [ "workers" ] ~docv:"N" ~doc:"Worker domains.")
  in
  let queue_limit =
    Arg.(value & opt int 64
         & info [ "queue-limit" ] ~docv:"N"
             ~doc:"Backpressure high-water mark: past this many queued \
                   requests, compute requests are rejected as overloaded.")
  in
  let deadline_ms =
    Arg.(value & opt (some int) None
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Default per-request deadline for requests without one.")
  in
  let access_log =
    Arg.(value & opt (some string) None
         & info [ "access-log" ] ~docv:"FILE"
             ~doc:"Append one JSON line per request ('-' for stderr).")
  in
  let peers =
    Arg.(value & opt (some string) None
         & info [ "peers" ] ~docv:"SPECS"
             ~doc:"Comma-separated fleet peers (unix:PATH or HOST:PORT) to \
                   replicate the certificate store with: push-on-write, \
                   pull-on-miss (docs/FLEET.md).")
  in
  let run addr workers queue_limit deadline_ms access_log peers =
    let peer_list =
      match peers with
      | None | Some "" -> Ok []
      | Some specs -> Peer.parse_list (String.split_on_char ',' specs)
    in
    match peer_list with
    | Error msg ->
        Printf.eprintf "speedup serve: %s\n" msg;
        2
    | Ok peer_list ->
        let log_oc =
          match access_log with
          | None -> None
          | Some "-" -> Some stderr
          | Some path ->
              Some (open_out_gen [ Open_append; Open_creat ] 0o644 path)
        in
        let config =
          {
            Server.addr;
            workers;
            queue_limit;
            default_deadline_ms = deadline_ms;
            access_log = log_oc;
            handler = None;
          }
        in
        let pp_addr = function
          | Server.Unix_path p -> Printf.sprintf "unix:%s" p
          | Server.Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p
        in
        let replica =
          match peer_list with [] -> None | ps -> Some (Replica.attach ps)
        in
        let summary =
          Fun.protect
            ~finally:(fun () -> Option.iter Replica.detach replica)
            (fun () ->
              Server.run
                ~on_ready:(fun addr ->
                  Printf.eprintf
                    "speedup serve: listening on %s (workers=%d peers=%d)\n%!"
                    (pp_addr addr) (max 1 workers) (List.length peer_list))
                config)
        in
        (match log_oc with
        | Some oc when oc != stderr -> close_out_noerr oc
        | _ -> ());
        Printf.eprintf
          "speedup serve: drained (requests=%d completed=%d rejected=%d)\n%!"
          summary.Server.requests summary.Server.completed
          summary.Server.rejected;
        if summary.Server.drained then 0 else 1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the query daemon (line-delimited JSON; see docs/SERVER.md). \
             With --peers, replicates the certificate store across the fleet \
             (docs/FLEET.md).  Drains gracefully on SIGINT or a shutdown \
             request.")
    Term.(const run $ addr_args $ workers $ queue_limit $ deadline_ms
          $ access_log $ peers)

let query_cmd =
  let meth =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"METHOD"
             ~doc:"ping, stats, solvable, closure, equiv, experiment, \
                   complex-stats, or shutdown.")
  in
  let experiment_id =
    Arg.(value & pos 1 (some string) None
         & info [] ~docv:"ARG" ~doc:"Experiment id (for 'experiment').")
  in
  let rounds =
    Arg.(value & opt int 1 & info [ "rounds"; "t" ] ~doc:"Rounds (solvable).")
  in
  let tas =
    Arg.(value & flag & info [ "tas" ] ~doc:"Augment IIS with test\\&set.")
  in
  let binary_inputs =
    Arg.(value & flag
         & info [ "binary-inputs" ]
             ~doc:"Restrict inputs to the binary input complex (solvable).")
  in
  let model =
    Arg.(value & opt string "immediate"
         & info [ "model" ] ~docv:"MODEL"
             ~doc:"collect, snapshot, immediate, or a model-algebra term \
                   (docs/MODELS.md).")
  in
  let lhs =
    Arg.(value & opt (some string) None
         & info [ "lhs" ] ~docv:"TERM" ~doc:"Left algebra term (equiv).")
  in
  let rhs =
    Arg.(value & opt (some string) None
         & info [ "rhs" ] ~docv:"TERM" ~doc:"Right algebra term (equiv).")
  in
  let deadline_ms =
    Arg.(value & opt (some int) None
         & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Per-request deadline.")
  in
  let id_arg =
    Arg.(value & opt int 1 & info [ "id" ] ~docv:"N" ~doc:"Request id.")
  in
  let retries =
    Arg.(value & opt int 20
         & info [ "retries" ] ~docv:"N"
             ~doc:"Connection attempts (0.1s apart), for racing a server \
                   that is still starting.")
  in
  let run addr meth experiment_id task n m eps rounds tas binary_inputs model
      lhs rhs deadline_ms id retries =
    let params =
      match meth with
      | "ping" | "stats" | "shutdown" -> []
      | "experiment" -> (
          match experiment_id with
          | Some eid -> [ ("id", Jsonl.String eid) ]
          | None ->
              Printf.eprintf "query experiment needs an id argument\n";
              exit 2)
      | "equiv" -> (
          match (lhs, rhs) with
          | Some l, Some r ->
              [
                ("lhs", Jsonl.String l);
                ("rhs", Jsonl.String r);
                ("n", Jsonl.Int n);
              ]
          | _ ->
              Printf.eprintf "query equiv needs --lhs and --rhs terms\n";
              exit 2)
      | _ ->
          [
            ("task", Jsonl.String task);
            ("n", Jsonl.Int n);
            ("m", Jsonl.Int m);
            ("eps", Jsonl.String (Format.asprintf "%a" Frac.pp eps));
            ("rounds", Jsonl.Int rounds);
            ("tas", Jsonl.Bool tas);
            ("binary_inputs", Jsonl.Bool binary_inputs);
            ("model", Jsonl.String model);
          ]
    in
    match Client.connect_retry ~attempts:(max 1 retries) addr with
    | Error msg ->
        Printf.eprintf "cannot connect: %s\n" msg;
        2
    | Ok client ->
        Fun.protect
          ~finally:(fun () -> Client.close client)
          (fun () ->
            match
              Client.request ?deadline_ms client ~id:(Jsonl.Int id) ~meth
                ~params
            with
            | Error msg ->
                Printf.eprintf "transport error: %s\n" msg;
                2
            | Ok line ->
                print_endline line;
                let ok =
                  match Jsonl.of_string line with
                  | Ok reply -> Jsonl.member "ok" reply = Some (Jsonl.Bool true)
                  | Error _ -> false
                in
                if ok then 0 else 1)
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Send one request to a running query daemon and print the raw \
             reply line.  Exits 0 on an ok reply, 1 on an error reply, 2 on \
             a transport failure.")
    Term.(const run $ addr_args $ meth $ experiment_id $ task_arg $ n_arg
          $ m_arg $ eps_arg $ rounds $ tas $ binary_inputs $ model $ lhs $ rhs
          $ deadline_ms $ id_arg $ retries)

(* ---- fleet ---- *)

let peers_arg =
  Arg.(required & opt (some string) None
       & info [ "peers" ] ~docv:"SPECS"
           ~doc:"Comma-separated backend daemons (unix:PATH or HOST:PORT).")

let fleet_route_cmd =
  let vnodes =
    Arg.(value & opt int 64
         & info [ "vnodes" ] ~docv:"N"
             ~doc:"Ring positions per peer (consistent hashing).")
  in
  let workers =
    Arg.(value & opt int 2
         & info [ "workers" ] ~docv:"N" ~doc:"Forwarding worker domains.")
  in
  let queue_limit =
    Arg.(value & opt int 64
         & info [ "queue-limit" ] ~docv:"N" ~doc:"Backpressure high-water mark.")
  in
  let deadline_ms =
    Arg.(value & opt (some int) None
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Default per-request deadline for requests without one.")
  in
  let run addr peers vnodes workers queue_limit deadline_ms =
    match Peer.parse_list (String.split_on_char ',' peers) with
    | Error msg ->
        Printf.eprintf "speedup fleet route: %s\n" msg;
        2
    | Ok [] ->
        Printf.eprintf "speedup fleet route: --peers is empty\n";
        2
    | Ok peer_list ->
        let proxy = Proxy.create ~vnodes peer_list in
        let config =
          {
            Server.addr;
            workers;
            queue_limit;
            default_deadline_ms = deadline_ms;
            access_log = None;
            handler = Some (Proxy.handler proxy);
          }
        in
        let pp_addr = function
          | Server.Unix_path p -> Printf.sprintf "unix:%s" p
          | Server.Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p
        in
        let summary =
          Server.run
            ~on_ready:(fun addr ->
              Printf.eprintf
                "speedup fleet route: listening on %s (peers=%d vnodes=%d)\n%!"
                (pp_addr addr) (List.length peer_list) vnodes)
            config
        in
        Printf.eprintf
          "speedup fleet route: drained (requests=%d completed=%d rejected=%d)\n%!"
          summary.Server.requests summary.Server.completed
          summary.Server.rejected;
        if summary.Server.drained then 0 else 1
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:"Run a consistent-hash routing front over a ring of daemons: \
             requests hash by canonical digest onto --peers, with rendezvous \
             failover when a peer is down (docs/FLEET.md).")
    Term.(const run $ addr_args $ peers_arg $ vnodes $ workers $ queue_limit
          $ deadline_ms)

let fleet_cmd =
  Cmd.group
    (Cmd.info "fleet"
       ~doc:"Multi-daemon serving: consistent-hash routing over replicated \
             certificate stores (docs/FLEET.md).")
    [ fleet_route_cmd ]

(* ---- atlas ---- *)

let atlas_name_arg =
  Arg.(value & opt string "default"
       & info [ "name" ] ~docv:"NAME" ~doc:"Atlas (manifest) name.")

let atlas_build_cmd =
  let max_n =
    Arg.(value & opt int 3
         & info [ "max-n" ] ~docv:"N"
             ~doc:"Largest process count in the cell grid (2..4).")
  in
  let run dir name max_n =
    if max_n < 2 || max_n > 4 then begin
      Printf.eprintf "speedup atlas build: --max-n must be in 2..4\n";
      2
    end
    else
      with_store dir @@ fun _root ->
      let spec = Atlas.default_spec ~max_n ~name () in
      match Atlas.build spec with
      | Error msg ->
          Printf.eprintf "speedup atlas build: %s\n" msg;
          1
      | Ok r ->
          Printf.printf
            "atlas %s: %d cell(s) (%d built, %d already present), manifest %s\n"
            name r.Atlas.cells r.Atlas.built r.Atlas.skipped r.Atlas.manifest_key;
          0
  in
  Cmd.v
    (Cmd.info "build"
       ~doc:"Batch-enumerate and certify every (model, task) cell of the \
             atlas grid into the certificate store, in parallel over the \
             domain pool; resumable, and finished by a coverage manifest \
             certificate (docs/FLEET.md).")
    Term.(const run $ cert_dir_arg $ atlas_name_arg $ max_n)

let atlas_verify_cmd =
  let run dir name =
    with_store dir @@ fun _root ->
    match Atlas.verify name with
    | Error msg ->
        Printf.eprintf "speedup atlas verify: %s\n" msg;
        1
    | Ok a ->
        Printf.printf "atlas %s: %d cell(s) verified, %d entr%s audited\n" name
          a.Atlas.audited_cells a.Atlas.audited_keys
          (if a.Atlas.audited_keys = 1 then "y" else "ies");
        0
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Audit an atlas: re-verify the coverage manifest and every store \
             entry it lists, without enumerating anything.")
    Term.(const run $ cert_dir_arg $ atlas_name_arg)

let atlas_cmd =
  Cmd.group
    (Cmd.info "atlas"
       ~doc:"Precomputed closure atlases: offline batch certification with \
             auditable coverage (docs/FLEET.md).")
    [ atlas_build_cmd; atlas_verify_cmd ]

let main_cmd =
  let doc = "Reproduction of the PODC'22 asynchronous speedup theorem paper." in
  Cmd.group
    (Cmd.info "speedup" ~version:"1.0.0" ~doc)
    [ experiment_cmd; list_cmd; complex_cmd; solve_cmd; closure_cmd; model_cmd;
      run_algo_cmd; figure_cmd; svg_cmd; cert_cmd; serve_cmd; query_cmd;
      fleet_cmd; atlas_cmd ]

let () =
  (* Debug logging is opt-in via the environment so that every
     subcommand honors it without threading a flag. *)
  (match Sys.getenv_opt "SPEEDUP_DEBUG" with
  | Some ("1" | "true" | "yes") ->
      Logs.set_reporter (Logs.format_reporter ());
      Logs.set_level (Some Logs.Debug)
  | Some _ | None -> Logs.set_level (Some Logs.Warning));
  (* Validate SPEEDUP_JOBS up front so a bad value fails the command
     before any work starts, not mid-computation. *)
  (match Pool.jobs () with
  | _ -> ()
  | exception Invalid_argument msg ->
      Printf.eprintf "speedup: %s\n" msg;
      exit 2);
  let code = Cmd.eval' main_cmd in
  (* One greppable line for CI: a warm certificate store must show
     enumerations=0 and store_hits>0. *)
  (match Sys.getenv_opt "SPEEDUP_STATS" with
  | Some ("1" | "true" | "yes") ->
      let m = Closure.memo_stats () in
      let s = Cert.Store.stats () in
      Printf.eprintf
        "closure-stats: memo_hits=%d memo_misses=%d enumerations=%d \
         entries=%d store_hits=%d store_misses=%d store_writes=%d \
         store_corrupt=%d\n"
        m.Closure.hits m.Closure.misses m.Closure.enumerations m.Closure.entries
        s.Cert_store.hits s.Cert_store.misses s.Cert_store.writes
        s.Cert_store.corrupt;
      (* Scheduler counters on their own greppable line: contention
         regressions (no steals, lopsided domains, runaway flushes)
         should be observable, not inferred from wall clocks. *)
      let p = Pool.stats () in
      Printf.eprintf
        "pool-stats: batches=%d chunks=%d items=%d steals=%d \
         stolen_chunks=%d flushes=%d domain_chunks=%s\n"
        p.Pool.batches p.Pool.chunks p.Pool.items p.Pool.steals
        p.Pool.stolen_chunks p.Pool.flushes
        (match p.Pool.domain_chunks with
        | [] -> "-"
        | dc ->
            String.concat ","
              (List.map (fun (slot, n) -> Printf.sprintf "%d:%d" slot n) dc));
      (* Replication counters (docs/FLEET.md): the fleet-smoke CI job
         greps pulls>0 to pin pull-on-miss. *)
      let r = Cert_store.repl_stats () in
      Printf.eprintf
        "repl-stats: pushes=%d push_failures=%d pulls=%d pull_misses=%d \
         installs=%d rejects=%d\n"
        r.Cert_store.pushes r.Cert_store.push_failures r.Cert_store.pulls
        r.Cert_store.pull_misses r.Cert_store.installs r.Cert_store.rejects
  | Some _ | None -> ());
  exit code
